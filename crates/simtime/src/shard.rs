//! Conservative (lookahead-based) parallel DES: sharded time-window
//! execution with a deterministic merge.
//!
//! [`EventQueue`] runs one world on one core. The storm worlds put 10³–10⁴
//! concurrent events in that queue, and `run_reps_par` can only
//! parallelize *across* repetitions — one huge world still serializes a
//! whole rep. This module splits a single world's event population into
//! per-shard queues and executes the shards in lock-step **time windows**:
//!
//! ```text
//! loop {
//!     gvt  = min over shards of next-event time        (global virtual time)
//!     end  = min(gvt + lookahead, horizon)             (window bound)
//!     for each shard in parallel:                      (injected executor)
//!         drain tie batches while next-event time < end
//!     deliver cross-shard events emitted this window   (canonical order)
//! }
//! ```
//!
//! **Lookahead** is the minimum virtual-time delay of any cross-shard
//! interaction, derived by the world from its topology/link model (e.g.
//! the 200 ns inter-NUMA UPI hop of the mpisim storm topology, the
//! intra-group fabric path of the netsim storm). An event emitted inside
//! the window `[gvt, end)` toward another shard therefore arrives at
//! `emission + lookahead ≥ end` — never inside the executing window — so
//! every shard can drain its window without observing its peers. The
//! contract is *enforced*, not assumed: [`LaneCtx::send_to`] asserts the
//! arrival time is at or past the window bound, so a mis-derived
//! lookahead fails loudly instead of silently corrupting determinism.
//!
//! **Determinism.** The result is bit-identical to serial execution at
//! any shard count, under two conditions the worlds uphold:
//!
//! 1. *Partition respects state coupling.* Shards share no mutable
//!    state; anything coupled (mpisim pairs sharing a NUMA copy port)
//!    lives in one shard. Then the serial `(time, seq)` pop order,
//!    restricted to one shard's events, equals that shard's local
//!    `(time, seq)` order by induction over scheduling — per-shard seqs
//!    are assigned in the same relative order the serial queue would
//!    assign them.
//! 2. *Tie batches are order-canonical.* The engine hands the handler a
//!    whole same-timestamp batch ([`EventQueue::pop_batch`] — the PR-6
//!    tie-group seam). A world whose same-timestamp events interact
//!    across a shard boundary must process the batch in a
//!    content-derived order (sort by payload key) rather than seq order,
//!    because boundary-delivered events get their dst-queue seqs at the
//!    window barrier. Worlds with no cross-shard events (the storms, by
//!    partition construction) may keep plain seq order — condition 1
//!    alone makes it serial-equal.
//!
//! Cross-shard events buffered during a window are merged at the barrier
//! in canonical `(time, source shard, emission index)` order before being
//! scheduled into their destination queues, so dst-queue seq assignment —
//! and therefore every downstream tie group — is independent of executor
//! interleaving and worker count.
//!
//! Threading is *injected*: [`ShardRunner::run_until`] takes an executor
//! closure so `benchlib`'s scoped thread pool can drive the lanes without
//! this crate depending on it (the dependency points the other way).
//! [`serial_exec`] is the in-crate oracle; with it, the sharded path is
//! plain deterministic single-threaded code.
//!
//! Shard-count selection mirrors the queue-policy knob: a process-wide
//! [`ShardPolicy`] default resolved once from `DOEBENCH_SHARDS`
//! (`serial` / `auto` / a shard count), overridable programmatically for
//! A/B harnesses.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

use crate::event::{EventQueue, QueuePolicy, Scheduled};
use crate::time::{SimDuration, SimTime};

/// How many shards a sharded-capable world should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One shard: the sharded code path at shard count 1 (the oracle the
    /// differential tests compare against).
    Serial,
    /// Exactly `n` shards (clamped to the world's maximum).
    Sharded(usize),
    /// `available_parallelism()`, clamped to the world's maximum.
    Auto,
}

impl ShardPolicy {
    /// Resolve to a concrete shard count for a world that can support at
    /// most `max_shards` shards (e.g. one shard per NUMA domain).
    ///
    /// Shard count and worker count are independent: 8 shards on a 1-core
    /// host run the same lanes serially and produce the same bytes.
    pub fn resolve(self, max_shards: usize) -> usize {
        let max = max_shards.max(1);
        match self {
            ShardPolicy::Serial => 1,
            ShardPolicy::Sharded(n) => n.clamp(1, max),
            ShardPolicy::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, max),
        }
    }
}

/// Process-wide default shard policy, resolved once from
/// `DOEBENCH_SHARDS`. Encoding: 0 unset, 1 serial, 2 auto, `n + 2` for
/// `Sharded(n)` with `n >= 2`.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

const SHARDS_SERIAL: usize = 1;
const SHARDS_AUTO: usize = 2;

fn encode_shards(p: ShardPolicy) -> usize {
    match p {
        ShardPolicy::Serial | ShardPolicy::Sharded(0) | ShardPolicy::Sharded(1) => SHARDS_SERIAL,
        ShardPolicy::Auto => SHARDS_AUTO,
        ShardPolicy::Sharded(n) => n + 2,
    }
}

/// Override the process-wide default [`ShardPolicy`]. Worlds already
/// constructed are unaffected. Intended for A/B harnesses that run the
/// same workload at several shard counts in one process.
pub fn set_default_shard_policy(p: ShardPolicy) {
    DEFAULT_SHARDS.store(encode_shards(p), AtomicOrdering::Relaxed);
}

/// The process-wide default [`ShardPolicy`]: `DOEBENCH_SHARDS` if set
/// (`serial` / `1`, `auto` / `0`, or a shard count), else `Auto`.
pub fn default_shard_policy() -> ShardPolicy {
    match DEFAULT_SHARDS.load(AtomicOrdering::Relaxed) {
        0 => {
            // dessan::allow(env-read): documented sharded-DES A/B knob (DOEBENCH_SHARDS=serial|auto|N), read once at first use.
            let p = match std::env::var("DOEBENCH_SHARDS").as_deref() {
                Ok("serial") | Ok("1") => ShardPolicy::Serial,
                Ok("auto") | Ok("0") | Err(_) => ShardPolicy::Auto,
                Ok(s) => match s.trim().parse::<usize>() {
                    Ok(n) if n >= 2 => ShardPolicy::Sharded(n),
                    Ok(_) => ShardPolicy::Serial,
                    Err(_) => ShardPolicy::Auto,
                },
            };
            DEFAULT_SHARDS.store(encode_shards(p), AtomicOrdering::Relaxed);
            p
        }
        SHARDS_SERIAL => ShardPolicy::Serial,
        SHARDS_AUTO => ShardPolicy::Auto,
        n => ShardPolicy::Sharded(n - 2),
    }
}

/// Process-global telemetry: windows executed, cross-shard events
/// delivered, and tie batches merged across every [`ShardRunner`] in the
/// process (exported on `doebenchd`'s `/stats`). Updated once per
/// `run_until`, not per window.
static TOTAL_WINDOWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_CROSS_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MERGE_BATCHES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global shard counters:
/// `(windows, cross_events, merge_batches)`.
pub fn global_shard_counters() -> (u64, u64, u64) {
    (
        TOTAL_WINDOWS.load(AtomicOrdering::Relaxed),
        TOTAL_CROSS_EVENTS.load(AtomicOrdering::Relaxed),
        TOTAL_MERGE_BATCHES.load(AtomicOrdering::Relaxed),
    )
}

/// Per-runner shard/window counters, surfaced in the storm reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards (lanes) the runner executes.
    pub shards: usize,
    /// Lock-step time windows executed so far.
    pub windows: u64,
    /// Events delivered across a shard boundary at window barriers.
    pub cross_events: u64,
    /// Same-timestamp tie batches drained (summed over shards).
    pub merge_batches: u64,
}

/// A cross-shard event buffered during a window, delivered at the
/// barrier. `(at, src, idx)` is the canonical merge key: `src` is the
/// emitting shard and `idx` its emission index within the window, so the
/// merge order — and the dst-queue seqs it assigns — is independent of
/// executor interleaving.
#[derive(Debug)]
struct CrossEvent<T> {
    at: SimTime,
    dst: u32,
    src: u32,
    idx: u32,
    payload: T,
}

/// One shard: its world, its event queue, and its pooled window scratch.
///
/// Public only as an opaque executor item — an executor receives
/// `&mut [Lane<W, T>]` and a per-lane closure, nothing more.
#[derive(Debug)]
pub struct Lane<W, T> {
    shard: usize,
    world: W,
    queue: EventQueue<T>,
    /// Tie-group scratch, reused across every batch (allocation-free
    /// once warm).
    batch: Vec<Scheduled<T>>,
    /// Cross-shard emissions this window, reused across windows.
    outbox: Vec<CrossEvent<T>>,
    /// Tie batches drained (the merge-batch counter's per-lane share).
    batches: u64,
    /// Events popped and handed to the handler.
    events: u64,
}

impl<W, T> Lane<W, T> {
    /// Drain every tie batch strictly before `window_end`, handing each
    /// whole same-timestamp group to the handler. Allocation-free once
    /// the batch scratch and queue arena are warm.
    // doebench::hot
    // doebench::effects(no-block)
    fn drain_window<E, H>(&mut self, window_end: SimTime, handler: &H) -> Result<(), E>
    where
        H: Fn(&mut W, SimTime, &[Scheduled<T>], &mut LaneCtx<'_, T>) -> Result<(), E>,
    {
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end {
                break;
            }
            self.queue.pop_batch(&mut self.batch);
            self.batches += 1;
            self.events += self.batch.len() as u64;
            let mut ctx = LaneCtx {
                shard: self.shard,
                window_end,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
            };
            handler(&mut self.world, t, &self.batch, &mut ctx)?;
        }
        Ok(())
    }
}

/// The handler's scheduling surface while it processes one tie batch.
#[derive(Debug)]
pub struct LaneCtx<'a, T> {
    shard: usize,
    window_end: SimTime,
    queue: &'a mut EventQueue<T>,
    outbox: &'a mut Vec<CrossEvent<T>>,
}

impl<T> LaneCtx<'_, T> {
    /// The shard this batch executes on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The exclusive upper bound of the executing window. Local events
    /// scheduled below it are drained later in this same window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Schedule a follow-up event on this shard's own queue (any future
    /// time, including inside the current window).
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        self.queue.schedule(at, payload);
    }

    /// Emit an event to shard `dst`, delivered at the window barrier.
    ///
    /// # Panics
    /// Panics if `at` is inside the executing window — that means the
    /// world's declared lookahead over-promised, and conservative
    /// execution would be unsound.
    pub fn send_to(&mut self, dst: usize, at: SimTime, payload: T) {
        assert!(
            at >= self.window_end,
            "cross-shard event at {at:?} lands inside the window ending {:?}: \
             the world's lookahead is not conservative",
            self.window_end
        );
        self.outbox.push(CrossEvent {
            at,
            dst: dst as u32,
            src: self.shard as u32,
            idx: self.outbox.len() as u32,
            payload,
        });
    }
}

/// Execute the per-lane closure over every lane, serially. The in-crate
/// oracle executor; `benchlib::parallel_for_each_mut` is its pooled twin.
pub fn serial_exec<W, T>(lanes: &mut [Lane<W, T>], f: &(dyn Fn(&mut Lane<W, T>) + Sync)) {
    for lane in lanes {
        f(lane);
    }
}

/// The sharded conservative-window engine: per-shard queues, lock-step
/// windows, canonical barrier merge.
#[derive(Debug)]
pub struct ShardRunner<W, T> {
    lanes: Vec<Lane<W, T>>,
    lookahead: SimDuration,
    windows: u64,
    cross_events: u64,
    /// Barrier merge scratch, reused across windows.
    xfer: Vec<CrossEvent<T>>,
}

impl<W, T> ShardRunner<W, T> {
    /// One lane per world. `lookahead` is the world-derived minimum
    /// cross-shard delay (must be positive — a zero window never
    /// advances); `cap` pre-sizes each lane's queue arena and batch
    /// scratch so the steady state is allocation-free.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration, policy: QueuePolicy, cap: usize) -> Self {
        assert!(!worlds.is_empty(), "a runner needs at least one shard");
        assert!(
            lookahead > SimDuration::ZERO,
            "lookahead must be positive: a zero-width window cannot advance"
        );
        let lanes = worlds
            .into_iter()
            .enumerate()
            .map(|(shard, world)| Lane {
                shard,
                world,
                queue: EventQueue::with_policy_and_capacity(policy, cap),
                batch: Vec::with_capacity(cap),
                outbox: Vec::new(),
                batches: 0,
                events: 0,
            })
            .collect();
        ShardRunner {
            lanes,
            lookahead,
            windows: 0,
            cross_events: 0,
            xfer: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// The world behind shard `s`.
    pub fn world(&self, s: usize) -> &W {
        &self.lanes[s].world
    }

    /// Mutable world access (seeding, enabling checks).
    pub fn world_mut(&mut self, s: usize) -> &mut W {
        &mut self.lanes[s].world
    }

    /// Every shard's world, in shard order.
    pub fn worlds(&self) -> impl Iterator<Item = &W> {
        self.lanes.iter().map(|l| &l.world)
    }

    /// Seed an initial event onto shard `s`. Call in the same relative
    /// order the serial world would schedule them, so per-shard seqs are
    /// the serial seqs restricted to the shard.
    pub fn seed(&mut self, s: usize, at: SimTime, payload: T) {
        self.lanes[s].queue.schedule(at, payload);
    }

    /// Events popped and handled so far, across all shards. With a
    /// virtual-time horizon this count is shard-count-invariant.
    pub fn events(&self) -> u64 {
        self.lanes.iter().map(|l| l.events).sum()
    }

    /// The global virtual time: earliest pending event on any shard.
    pub fn next_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.queue.peek_time()).min()
    }

    /// True while any lane's calendar core is active (diagnostic).
    pub fn used_calendar(&self) -> bool {
        self.lanes.iter().any(|l| l.queue.is_calendar())
    }

    /// Shard/window counters so far.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.lanes.len(),
            windows: self.windows,
            cross_events: self.cross_events,
            merge_batches: self.lanes.iter().map(|l| l.batches).sum(),
        }
    }

    /// Deliver the window's buffered cross-shard events in canonical
    /// `(time, source shard, emission index)` order.
    fn flush_cross(&mut self) {
        self.xfer.clear();
        for lane in &mut self.lanes {
            self.xfer.append(&mut lane.outbox);
        }
        if self.xfer.is_empty() {
            return;
        }
        self.cross_events += self.xfer.len() as u64;
        self.xfer.sort_unstable_by_key(|e| (e.at, e.src, e.idx));
        for ev in self.xfer.drain(..) {
            self.lanes[ev.dst as usize]
                .queue
                .schedule(ev.at, ev.payload);
        }
    }

    /// Run conservative windows until no event earlier than `horizon`
    /// remains; events at or past `horizon` stay queued for a later call.
    ///
    /// `handler` processes one whole same-timestamp batch per call (see
    /// the module docs for its determinism obligations). `exec` applies
    /// the per-lane window drain — [`serial_exec`] or a thread-pool twin;
    /// the result is bit-identical either way. On error, the failure
    /// from the lowest-numbered shard is returned (deterministic at any
    /// worker count); the run can be resumed or inspected afterwards.
    ///
    /// Returns the total events handled so far (see [`Self::events`]).
    pub fn run_until<E, H, X>(&mut self, horizon: SimTime, handler: &H, exec: &X) -> Result<u64, E>
    where
        W: Send,
        T: Send,
        E: Send,
        H: Fn(&mut W, SimTime, &[Scheduled<T>], &mut LaneCtx<'_, T>) -> Result<(), E> + Sync,
        X: Fn(&mut [Lane<W, T>], &(dyn Fn(&mut Lane<W, T>) + Sync)),
    {
        let start_windows = self.windows;
        let start_cross = self.cross_events;
        let start_batches: u64 = self.lanes.iter().map(|l| l.batches).sum();
        while let Some(gvt) = self.next_time() {
            if gvt >= horizon {
                break;
            }
            let window_end = (gvt + self.lookahead).min(horizon);
            self.windows += 1;
            // The error slot lives on the stack; workers lock it only on
            // the cold failure path, keeping the steady state
            // allocation-free. Lowest shard index wins so the reported
            // error does not depend on worker interleaving.
            let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
            let per_lane = |lane: &mut Lane<W, T>| {
                if let Err(e) = lane.drain_window(window_end, handler) {
                    let mut slot = first_err.lock().unwrap_or_else(|p| p.into_inner());
                    let stale = matches!(&*slot, Some((s, _)) if *s <= lane.shard);
                    if !stale {
                        *slot = Some((lane.shard, e));
                    }
                }
            };
            exec(&mut self.lanes, &per_lane);
            let fail = first_err.into_inner().unwrap_or_else(|p| p.into_inner());
            if let Some((_, e)) = fail {
                return Err(e);
            }
            self.flush_cross();
        }
        TOTAL_WINDOWS.fetch_add(self.windows - start_windows, AtomicOrdering::Relaxed);
        TOTAL_CROSS_EVENTS.fetch_add(self.cross_events - start_cross, AtomicOrdering::Relaxed);
        let batches: u64 = self.lanes.iter().map(|l| l.batches).sum();
        TOTAL_MERGE_BATCHES.fetch_add(batches - start_batches, AtomicOrdering::Relaxed);
        Ok(self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> SimTime {
        SimTime::from_ps(v)
    }

    #[test]
    fn policy_resolves_and_clamps() {
        assert_eq!(ShardPolicy::Serial.resolve(8), 1);
        assert_eq!(ShardPolicy::Sharded(4).resolve(8), 4);
        assert_eq!(ShardPolicy::Sharded(100).resolve(8), 8);
        assert_eq!(ShardPolicy::Sharded(0).resolve(8), 1);
        let auto = ShardPolicy::Auto.resolve(8);
        assert!((1..=8).contains(&auto));
        assert_eq!(ShardPolicy::Auto.resolve(0), 1);
    }

    #[test]
    fn default_policy_round_trips_through_the_override() {
        for p in [
            ShardPolicy::Serial,
            ShardPolicy::Auto,
            ShardPolicy::Sharded(2),
            ShardPolicy::Sharded(8),
        ] {
            set_default_shard_policy(p);
            assert_eq!(default_policy_normalized(p), default_shard_policy());
        }
        set_default_shard_policy(ShardPolicy::Auto);
    }

    fn default_policy_normalized(p: ShardPolicy) -> ShardPolicy {
        match p {
            ShardPolicy::Sharded(0) | ShardPolicy::Sharded(1) => ShardPolicy::Serial,
            other => other,
        }
    }

    #[test]
    #[should_panic(expected = "lookahead is not conservative")]
    fn non_conservative_send_panics() {
        let mut r: ShardRunner<(), u32> = ShardRunner::new(
            vec![(), ()],
            SimDuration::from_ps(1_000),
            QueuePolicy::Heap,
            4,
        );
        r.seed(0, ps(100), 7);
        let handler = |_w: &mut (),
                       t: SimTime,
                       _batch: &[Scheduled<u32>],
                       ctx: &mut LaneCtx<'_, u32>|
         -> Result<(), ()> {
            // One ps of delay is far below the declared 1000 ps lookahead.
            ctx.send_to(1, t + SimDuration::from_ps(1), 9);
            Ok(())
        };
        let _ = r.run_until(ps(10_000), &handler, &serial_exec);
    }

    #[test]
    fn errors_surface_from_the_lowest_shard() {
        let mut r: ShardRunner<(), u32> = ShardRunner::new(
            vec![(), (), ()],
            SimDuration::from_ps(1_000_000),
            QueuePolicy::Heap,
            4,
        );
        // Both shard 2 and shard 1 fail inside the same window.
        r.seed(1, ps(100), 1);
        r.seed(2, ps(50), 2);
        let handler = |_w: &mut (),
                       _t: SimTime,
                       batch: &[Scheduled<u32>],
                       _ctx: &mut LaneCtx<'_, u32>|
         -> Result<(), u32> { Err(batch[0].payload) };
        let err = r.run_until(ps(10_000), &handler, &serial_exec);
        assert_eq!(err, Err(1), "lowest shard index wins");
    }

    // ------------------------------------------------------------------
    // The three-way differential: a synthetic interacting world run at
    // 1, 2, and 8 shards (plus a plain-EventQueue reference) must agree
    // bit for bit. Entities step themselves forward and occasionally
    // send tokens to other entities; token routing crosses shard
    // boundaries or not depending on the partition, which is exactly
    // what the engine must make unobservable.
    // ------------------------------------------------------------------

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Msg {
        /// A token arriving at an entity, carrying a value.
        Token { e: u32, v: u64 },
        /// An entity's own step.
        Step { e: u32 },
    }

    impl Msg {
        fn entity(&self) -> u32 {
            match *self {
                Msg::Token { e, .. } | Msg::Step { e } => e,
            }
        }
    }

    /// The entities a shard owns: a contiguous block.
    #[derive(Debug, Clone)]
    struct ToyWorld {
        base: usize,
        clocks: Vec<SimTime>,
        acc: Vec<u64>,
        mailbox: Vec<u64>,
    }

    fn owner(e: usize, entities: usize, shards: usize) -> usize {
        e * shards / entities
    }

    fn mix(a: u64, b: u64) -> u64 {
        let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 27;
        x = x.wrapping_mul(0x3c79_ac49_2ba7_b653);
        x ^ (x >> 33)
    }

    const LOOKAHEAD_PS: u64 = 10_000;

    /// Process one tie batch in content-canonical order. Boundary
    /// deliveries make seq order shard-count-dependent, so the handler
    /// sorts the batch by payload — `Msg`'s `Ord` puts tokens before
    /// steps per entity, and token values break token ties.
    fn toy_handler(
        entities: usize,
        shards: usize,
        send_every: u64,
    ) -> impl Fn(&mut ToyWorld, SimTime, &[Scheduled<Msg>], &mut LaneCtx<'_, Msg>) -> Result<(), ()> + Sync
    {
        move |w, t, batch, ctx| {
            let mut msgs: Vec<Msg> = batch.iter().map(|ev| ev.payload).collect();
            msgs.sort_unstable();
            for m in msgs {
                let i = m.entity() as usize - w.base;
                match m {
                    Msg::Token { v, .. } => {
                        w.mailbox[i] = w.mailbox[i].wrapping_add(v);
                    }
                    Msg::Step { e } => {
                        w.acc[i] = mix(w.acc[i].wrapping_add(w.mailbox[i]), t.as_ps());
                        w.clocks[i] = t;
                        if send_every > 0 && w.acc[i] % send_every == 0 {
                            let dst_e = (w.acc[i] >> 8) as usize % entities;
                            let dst = owner(dst_e, entities, shards);
                            let extra = SimDuration::from_ps(w.acc[i] % 5_000);
                            let at = t + SimDuration::from_ps(LOOKAHEAD_PS) + extra;
                            let token = Msg::Token {
                                e: dst_e as u32,
                                v: w.acc[i] | 1,
                            };
                            // Same-shard tokens go through the local
                            // queue, cross-shard ones through the
                            // barrier; the tie-canonical handler makes
                            // the difference unobservable.
                            if dst == ctx.shard() {
                                ctx.schedule(at, token);
                            } else {
                                ctx.send_to(dst, at, token);
                            }
                        }
                        let gap = 1_000 + w.acc[i] % 7_000;
                        ctx.schedule(t + SimDuration::from_ps(gap), Msg::Step { e });
                    }
                }
            }
            Ok(())
        }
    }

    /// Observable outcome of a toy run: per-entity clocks and state,
    /// plus the engine's event count.
    #[derive(Debug, PartialEq, Eq)]
    struct ToyOutcome {
        clocks: Vec<SimTime>,
        acc: Vec<u64>,
        mailbox: Vec<u64>,
        events: u64,
    }

    /// Run the toy world at `shards` shards over a script of horizons.
    fn run_toy(
        entities: usize,
        shards: usize,
        send_every: u64,
        policy: QueuePolicy,
        starts: &[u64],
        horizons: &[u64],
    ) -> ToyOutcome {
        let mut worlds = Vec::new();
        for s in 0..shards {
            let owned = (0..entities).filter(|&e| owner(e, entities, shards) == s);
            let n = owned.clone().count();
            let base = owned.clone().next().unwrap_or(0);
            worlds.push(ToyWorld {
                base,
                clocks: vec![SimTime::ZERO; n],
                acc: (0..n).map(|i| mix(17, (base + i) as u64)).collect(),
                mailbox: vec![0; n],
            });
        }
        let mut r = ShardRunner::new(
            worlds,
            SimDuration::from_ps(LOOKAHEAD_PS),
            policy,
            entities.max(4),
        );
        // Seed in global entity order, as a serial world would.
        for e in 0..entities {
            let s = owner(e, entities, shards);
            r.seed(s, ps(starts[e % starts.len()]), Msg::Step { e: e as u32 });
        }
        let handler = toy_handler(entities, shards, send_every);
        let mut events = 0;
        for &h in horizons {
            events = r
                .run_until(ps(h), &handler, &serial_exec)
                .unwrap_or_else(|_| panic!("toy world cannot fail"));
        }
        let mut clocks = Vec::new();
        let mut acc = Vec::new();
        let mut mailbox = Vec::new();
        for e in 0..entities {
            let s = owner(e, entities, shards);
            let w = r.world(s);
            let i = e - w.base;
            clocks.push(w.clocks[i]);
            acc.push(w.acc[i]);
            mailbox.push(w.mailbox[i]);
        }
        ToyOutcome {
            clocks,
            acc,
            mailbox,
            events,
        }
    }

    /// Plain single-queue reference: no ShardRunner, no windows — the
    /// ordinary serial DES loop with the same canonical tie handling.
    fn run_toy_reference(
        entities: usize,
        send_every: u64,
        starts: &[u64],
        horizon: u64,
    ) -> ToyOutcome {
        let mut w = ToyWorld {
            base: 0,
            clocks: vec![SimTime::ZERO; entities],
            acc: (0..entities).map(|e| mix(17, e as u64)).collect(),
            mailbox: vec![0; entities],
        };
        let mut q: EventQueue<Msg> = EventQueue::with_capacity(entities.max(4));
        for e in 0..entities {
            q.schedule(ps(starts[e % starts.len()]), Msg::Step { e: e as u32 });
        }
        let mut batch = Vec::new();
        let mut events = 0u64;
        while let Some(t) = q.peek_time() {
            if t >= ps(horizon) {
                break;
            }
            q.pop_batch(&mut batch);
            events += batch.len() as u64;
            let mut msgs: Vec<Msg> = batch.iter().map(|ev| ev.payload).collect();
            msgs.sort_unstable();
            for m in msgs {
                let i = m.entity() as usize;
                match m {
                    Msg::Token { v, .. } => w.mailbox[i] = w.mailbox[i].wrapping_add(v),
                    Msg::Step { e } => {
                        w.acc[i] = mix(w.acc[i].wrapping_add(w.mailbox[i]), t.as_ps());
                        w.clocks[i] = t;
                        if send_every > 0 && w.acc[i] % send_every == 0 {
                            let dst_e = (w.acc[i] >> 8) as usize % entities;
                            let extra = SimDuration::from_ps(w.acc[i] % 5_000);
                            let at = t + SimDuration::from_ps(LOOKAHEAD_PS) + extra;
                            q.schedule(
                                at,
                                Msg::Token {
                                    e: dst_e as u32,
                                    v: w.acc[i] | 1,
                                },
                            );
                        }
                        let gap = 1_000 + w.acc[i] % 7_000;
                        q.schedule(t + SimDuration::from_ps(gap), Msg::Step { e });
                    }
                }
            }
        }
        ToyOutcome {
            clocks: w.clocks,
            acc: w.acc,
            mailbox: w.mailbox,
            events,
        }
    }

    #[test]
    fn sharded_toy_world_matches_reference_and_counts_cross_events() {
        let starts = [0, 300, 1_100];
        let reference = run_toy_reference(12, 3, &starts, 400_000);
        assert!(reference.events > 100, "world must make progress");
        for shards in [1, 2, 8] {
            let got = run_toy(12, shards, 3, QueuePolicy::Auto, &starts, &[400_000]);
            assert_eq!(got, reference, "shards={shards}");
        }
        // At 2+ shards with 12 interacting entities, some tokens must
        // actually cross a boundary — otherwise this test proves nothing.
        let mut worlds = Vec::new();
        for s in 0..2 {
            let owned: Vec<usize> = (0..12).filter(|&e| owner(e, 12, 2) == s).collect();
            worlds.push(ToyWorld {
                base: owned[0],
                clocks: vec![SimTime::ZERO; owned.len()],
                acc: owned.iter().map(|&e| mix(17, e as u64)).collect(),
                mailbox: vec![0; owned.len()],
            });
        }
        let mut r = ShardRunner::new(
            worlds,
            SimDuration::from_ps(LOOKAHEAD_PS),
            QueuePolicy::Auto,
            12,
        );
        for e in 0..12usize {
            r.seed(
                owner(e, 12, 2),
                ps(starts[e % 3]),
                Msg::Step { e: e as u32 },
            );
        }
        let handler = toy_handler(12, 2, 3);
        r.run_until(ps(400_000), &handler, &serial_exec)
            .unwrap_or_else(|_| panic!("toy world cannot fail"));
        let stats = r.stats();
        assert_eq!(stats.shards, 2);
        assert!(stats.windows > 0);
        assert!(stats.merge_batches > 0);
        assert!(
            stats.cross_events > 0,
            "differential must exercise the boundary path: {stats:?}"
        );
    }

    #[test]
    fn threaded_executor_matches_serial_executor() {
        // A scoped-thread executor: one thread per lane, maximum
        // interleaving freedom — results must still be byte-identical.
        fn threaded<W: Send, T: Send>(
            lanes: &mut [Lane<W, T>],
            f: &(dyn Fn(&mut Lane<W, T>) + Sync),
        ) {
            std::thread::scope(|s| {
                for lane in lanes.iter_mut() {
                    s.spawn(move || f(lane));
                }
            });
        }
        let starts = [0, 500];
        let serial = run_toy(10, 4, 2, QueuePolicy::Auto, &starts, &[250_000]);
        // Re-run with the threaded executor.
        let mut worlds = Vec::new();
        for s in 0..4 {
            let owned: Vec<usize> = (0..10).filter(|&e| owner(e, 10, 4) == s).collect();
            worlds.push(ToyWorld {
                base: owned[0],
                clocks: vec![SimTime::ZERO; owned.len()],
                acc: owned.iter().map(|&e| mix(17, e as u64)).collect(),
                mailbox: vec![0; owned.len()],
            });
        }
        let mut r = ShardRunner::new(
            worlds,
            SimDuration::from_ps(LOOKAHEAD_PS),
            QueuePolicy::Auto,
            10,
        );
        for e in 0..10usize {
            r.seed(
                owner(e, 10, 4),
                ps(starts[e % 2]),
                Msg::Step { e: e as u32 },
            );
        }
        let handler = toy_handler(10, 4, 2);
        let events = r
            .run_until(ps(250_000), &handler, &threaded)
            .unwrap_or_else(|_| panic!("toy world cannot fail"));
        assert_eq!(events, serial.events);
        for e in 0..10usize {
            let s = owner(e, 10, 4);
            let w = r.world(s);
            let i = e - w.base;
            assert_eq!(w.clocks[i], serial.clocks[e], "entity {e} clock");
            assert_eq!(w.acc[i], serial.acc[e], "entity {e} acc");
        }
    }

    #[test]
    fn incremental_horizons_match_one_shot() {
        let starts = [0, 700, 50];
        let one_shot = run_toy(9, 2, 4, QueuePolicy::Auto, &starts, &[300_000]);
        let stepped = run_toy(
            9,
            2,
            4,
            QueuePolicy::Auto,
            &starts,
            &[40_000, 90_000, 300_000],
        );
        assert_eq!(one_shot, stepped);
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// The tentpole contract: serial (1 shard), 2 shards, and 8
            /// shards agree bit for bit with the plain-queue reference,
            /// over arbitrary entity counts, start offsets, interaction
            /// rates, drain scripts, and both queue cores.
            #[test]
            fn prop_serial_two_and_eight_shards_agree(
                entities in 2usize..20,
                starts in proptest::collection::vec(0u64..20_000, 1..5),
                send_every in 0u64..6,
                cut in 1u64..10,
                calendar in any::<bool>(),
            ) {
                let horizon = 500_000u64;
                let policy = if calendar { QueuePolicy::Calendar } else { QueuePolicy::Heap };
                let script = [horizon * cut / 10, horizon];
                let reference = run_toy_reference(entities, send_every, &starts, horizon);
                for shards in [1usize, 2, 8] {
                    let got = run_toy(entities, shards, send_every, policy, &starts, &script);
                    prop_assert_eq!(&got, &reference, "shards={}", shards);
                }
            }
        }
    }
}
