//! A deterministic discrete-event queue.
//!
//! Completions of in-flight simulated work (DMA transfers, kernel
//! executions, in-flight protocol messages) are scheduled here and popped in
//! timestamp order. Ties are broken by insertion sequence so that runs are
//! bit-for-bit reproducible regardless of heap internals.
//!
//! Storage is arena-backed: payloads live in a slab whose freed slots are
//! recycled through a free list, and the heap itself orders small `Copy`
//! index entries. Once the queue has reached its high-water mark, a
//! steady-state schedule/pop cycle touches no allocator at all — the form
//! a 100-repetition campaign's inner loop needs.

use std::cmp::Ordering;

use crate::time::SimTime;

/// An event of payload `T` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion index (FIFO among equal timestamps).
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (earliest first,
        // then lowest sequence number).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A heap entry: ordering key plus the arena slot holding the payload.
///
/// `Copy` on purpose — sift operations move these, never the payloads.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    /// Min-heap key: earliest timestamp first, then lowest sequence number.
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// Arena-backed: payloads live in `slots`, freed slots recycle through
/// `free`, and `heap` is a hand-rolled index min-heap of [`HeapEntry`].
/// After warm-up a schedule/pop cycle performs zero heap allocations.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Payload slab; `None` marks a free slot.
    slots: Vec<Option<T>>,
    /// Indices of free slots in `slots`, reused LIFO.
    free: Vec<u32>,
    /// Index min-heap ordered by `(at, seq)`.
    heap: Vec<HeapEntry>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with arena and heap capacity for `cap` in-flight
    /// events, so the first `cap` schedules never reallocate.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            heap: Vec::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`. Returns the event's sequence id.
    // doebench::hot
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event arena overflow");
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(HeapEntry { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        seq
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Pop the earliest event.
    ///
    /// # Panics
    /// Panics if event timestamps would move backwards relative to a
    /// previously popped event — that indicates a scheduling bug upstream.
    // doebench::hot
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        assert!(
            entry.at >= self.last_popped,
            "event queue time went backwards: {:?} after {:?}",
            entry.at,
            self.last_popped
        );
        self.last_popped = entry.at;
        let Some(payload) = self.slots[entry.slot as usize].take() else {
            unreachable!("heap entry points at an occupied slot")
        };
        self.free.push(entry.slot);
        Some(Scheduled {
            at: entry.at,
            seq: entry.seq,
            payload,
        })
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < n && self.heap[right].key() < self.heap[left].key() {
                smallest = right;
            }
            if self.heap[smallest].key() < self.heap[i].key() {
                self.heap.swap(i, smallest);
                i = smallest;
            } else {
                break;
            }
        }
    }

    /// Pop all events with timestamps `<= t`, earliest first, handing each
    /// to `sink` without building an intermediate `Vec` — the
    /// allocation-free form for hot event loops.
    pub fn drain_until(&mut self, t: SimTime, mut sink: impl FnMut(Scheduled<T>)) {
        while self.peek_time().is_some_and(|next| next <= t) {
            let Some(ev) = self.pop() else { break };
            sink(ev);
        }
    }

    /// Pop all events with timestamps `<= t`, earliest first.
    ///
    /// Allocates a fresh `Vec` per call; prefer [`Self::drain_until`] in
    /// loops that run per simulated operation.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<Scheduled<T>> {
        let mut out = Vec::new();
        self.drain_until(t, |ev| out.push(ev));
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (e.g. device reset). Retains the arena and
    /// heap capacity for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.heap.clear();
    }

    /// Capacity of the payload arena — its high-water mark of simultaneous
    /// in-flight events (diagnostic; steady state should plateau here).
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_is_inclusive() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.schedule(t(3.0), 3);
        let popped = q.pop_until(t(2.0));
        assert_eq!(popped.iter().map(|e| e.payload).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_visits_in_order_without_collecting() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), 2);
        q.schedule(t(1.0), 1);
        q.schedule(t(3.0), 3);
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        assert_eq!(seen, [1, 2]);
        assert_eq!(q.len(), 1);
        // Nothing at or before the cut: sink never runs.
        q.drain_until(t(2.5), |_| unreachable!("no events <= 2.5 us left"));
    }

    #[test]
    fn drain_until_on_empty_queue_never_calls_sink() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.drain_until(t(100.0), |_| unreachable!("empty queue has no events"));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_past_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(t(i as f64), i);
        }
        let mut seen = Vec::new();
        q.drain_until(t(1e9), |ev| seen.push(ev.payload));
        assert_eq!(seen, [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drain_until_tie_break_at_exactly_t_is_inclusive_and_fifo() {
        let mut q = EventQueue::new();
        // Three events at exactly the cut, one just after, one before.
        q.schedule(t(2.0), "tie-1");
        q.schedule(t(2.0) + SimDuration::from_ps(1), "after");
        q.schedule(t(1.0), "before");
        q.schedule(t(2.0), "tie-2");
        q.schedule(t(2.0), "tie-3");
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        // Inclusive at t, FIFO among the equal timestamps.
        assert_eq!(seen, ["before", "tie-1", "tie-2", "tie-3"]);
        assert_eq!(q.len(), 1);
        let rest = q.pop().map(|e| e.payload);
        assert_eq!(rest, Some("after"));
    }

    #[test]
    fn drain_until_repeated_calls_resume_where_they_stopped() {
        let mut q = EventQueue::new();
        for i in 0..6 {
            q.schedule(t(i as f64), i);
        }
        let mut first = Vec::new();
        q.drain_until(t(2.0), |ev| first.push(ev.payload));
        assert_eq!(first, [0, 1, 2]);
        let mut second = Vec::new();
        q.drain_until(t(5.0), |ev| second.push(ev.payload));
        assert_eq!(second, [3, 4, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn arena_slots_are_recycled_in_steady_state() {
        let mut q = EventQueue::with_capacity(4);
        // Warm up to 3 simultaneous in-flight events.
        for i in 0..3 {
            q.schedule(t(i as f64), i);
        }
        // Steady state: pop one, schedule one, a thousand times over.
        for i in 3..1000 {
            q.pop().expect("queue holds 3 events");
            q.schedule(t(i as f64), i);
        }
        // The arena never grew past the high-water mark.
        assert_eq!(q.arena_len(), 3);
        assert_eq!(q.len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![997, 998, 999]);
    }

    /// Operations a queue run is built from, for the differential proptest.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        Pop,
        DrainUntil(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..1_000).prop_map(Op::Push),
            (0u64..500).prop_map(Op::Push),
            Just(Op::Pop),
            (0u64..1_000).prop_map(Op::DrainUntil),
        ]
    }

    proptest! {
        /// Satellite: the arena queue's observable (timestamp, seq, payload)
        /// pop order matches a reference `BinaryHeap<Scheduled<T>>` under
        /// arbitrary interleaved push / pop / drain_until sequences.
        #[test]
        fn prop_arena_matches_reference_binary_heap(ops in proptest::collection::vec(op_strategy(), 0..120)) {
            use std::collections::BinaryHeap;

            let mut arena = EventQueue::new();
            let mut reference: BinaryHeap<Scheduled<u32>> = BinaryHeap::new();
            let mut ref_seq = 0u64;
            // The reference has no monotonicity guard, so only advance time:
            // drop ops that would schedule before the last observed pop.
            let mut floor = SimTime::ZERO;
            let mut payload = 0u32;

            for op in ops {
                match op {
                    Op::Push(ps) => {
                        let at = floor + SimDuration::from_ps(ps);
                        let seq = arena.schedule(at, payload);
                        prop_assert_eq!(seq, ref_seq);
                        reference.push(Scheduled { at, seq: ref_seq, payload });
                        ref_seq += 1;
                        payload += 1;
                    }
                    Op::Pop => {
                        let got = arena.pop();
                        let want = reference.pop();
                        match (got, want) {
                            (None, None) => {}
                            (Some(g), Some(w)) => {
                                prop_assert_eq!(g.at, w.at);
                                prop_assert_eq!(g.seq, w.seq);
                                prop_assert_eq!(g.payload, w.payload);
                                floor = g.at;
                            }
                            (g, w) => prop_assert!(false, "pop mismatch: {:?} vs {:?}", g, w),
                        }
                    }
                    Op::DrainUntil(ps) => {
                        let cut = floor + SimDuration::from_ps(ps);
                        let mut got = Vec::new();
                        arena.drain_until(cut, |ev| got.push(ev));
                        let mut want = Vec::new();
                        while reference.peek().is_some_and(|e| e.at <= cut) {
                            want.push(reference.pop().expect("peeked"));
                        }
                        prop_assert_eq!(got.len(), want.len());
                        for (g, w) in got.iter().zip(&want) {
                            prop_assert_eq!(g.at, w.at);
                            prop_assert_eq!(g.seq, w.seq);
                            prop_assert_eq!(g.payload, w.payload);
                        }
                        if let Some(last) = got.last() {
                            floor = last.at;
                        }
                    }
                }
                prop_assert_eq!(arena.len(), reference.len());
                prop_assert_eq!(arena.peek_time(), reference.peek().map(|e| e.at));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ps) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(ps), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((pt, pseq)) = prev {
                    prop_assert!(ev.at >= pt);
                    if ev.at == pt {
                        // FIFO among equal timestamps
                        prop_assert!(ev.payload > pseq);
                    }
                }
                prev = Some((ev.at, ev.payload));
            }
        }

        #[test]
        fn prop_pop_until_partitions(times in proptest::collection::vec(0u64..1_000, 0..100), cut in 0u64..1_000) {
            let mut q = EventQueue::new();
            for &ps in &times {
                q.schedule(SimTime::from_ps(ps), ps);
            }
            let popped = q.pop_until(SimTime::from_ps(cut));
            prop_assert!(popped.iter().all(|e| e.at <= SimTime::from_ps(cut)));
            prop_assert_eq!(popped.len() + q.len(), times.len());
            if let Some(nt) = q.peek_time() {
                prop_assert!(nt > SimTime::from_ps(cut));
            }
        }
    }
}
