//! A deterministic discrete-event queue.
//!
//! Completions of in-flight simulated work (DMA transfers, kernel
//! executions, in-flight protocol messages) are scheduled here and popped in
//! timestamp order. Ties are broken by insertion sequence so that runs are
//! bit-for-bit reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event of payload `T` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion index (FIFO among equal timestamps).
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (earliest first,
        // then lowest sequence number).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`. Returns the event's sequence id.
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        seq
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event.
    ///
    /// # Panics
    /// Panics if event timestamps would move backwards relative to a
    /// previously popped event — that indicates a scheduling bug upstream.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let ev = self.heap.pop()?;
        assert!(
            ev.at >= self.last_popped,
            "event queue time went backwards: {:?} after {:?}",
            ev.at,
            self.last_popped
        );
        self.last_popped = ev.at;
        Some(ev)
    }

    /// Pop all events with timestamps `<= t`, earliest first, handing each
    /// to `sink` without building an intermediate `Vec` — the
    /// allocation-free form for hot event loops.
    pub fn drain_until(&mut self, t: SimTime, mut sink: impl FnMut(Scheduled<T>)) {
        while self.peek_time().is_some_and(|next| next <= t) {
            let Some(ev) = self.pop() else { break };
            sink(ev);
        }
    }

    /// Pop all events with timestamps `<= t`, earliest first.
    ///
    /// Allocates a fresh `Vec` per call; prefer [`Self::drain_until`] in
    /// loops that run per simulated operation.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<Scheduled<T>> {
        let mut out = Vec::new();
        self.drain_until(t, |ev| out.push(ev));
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending event (e.g. device reset).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_is_inclusive() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.schedule(t(3.0), 3);
        let popped = q.pop_until(t(2.0));
        assert_eq!(popped.iter().map(|e| e.payload).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_visits_in_order_without_collecting() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), 2);
        q.schedule(t(1.0), 1);
        q.schedule(t(3.0), 3);
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        assert_eq!(seen, [1, 2]);
        assert_eq!(q.len(), 1);
        // Nothing at or before the cut: sink never runs.
        q.drain_until(t(2.5), |_| unreachable!("no events <= 2.5 us left"));
    }

    #[test]
    fn drain_until_on_empty_queue_never_calls_sink() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.drain_until(t(100.0), |_| unreachable!("empty queue has no events"));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_past_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(t(i as f64), i);
        }
        let mut seen = Vec::new();
        q.drain_until(t(1e9), |ev| seen.push(ev.payload));
        assert_eq!(seen, [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drain_until_tie_break_at_exactly_t_is_inclusive_and_fifo() {
        let mut q = EventQueue::new();
        // Three events at exactly the cut, one just after, one before.
        q.schedule(t(2.0), "tie-1");
        q.schedule(t(2.0) + SimDuration::from_ps(1), "after");
        q.schedule(t(1.0), "before");
        q.schedule(t(2.0), "tie-2");
        q.schedule(t(2.0), "tie-3");
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        // Inclusive at t, FIFO among the equal timestamps.
        assert_eq!(seen, ["before", "tie-1", "tie-2", "tie-3"]);
        assert_eq!(q.len(), 1);
        let rest = q.pop().map(|e| e.payload);
        assert_eq!(rest, Some("after"));
    }

    #[test]
    fn drain_until_repeated_calls_resume_where_they_stopped() {
        let mut q = EventQueue::new();
        for i in 0..6 {
            q.schedule(t(i as f64), i);
        }
        let mut first = Vec::new();
        q.drain_until(t(2.0), |ev| first.push(ev.payload));
        assert_eq!(first, [0, 1, 2]);
        let mut second = Vec::new();
        q.drain_until(t(5.0), |ev| second.push(ev.payload));
        assert_eq!(second, [3, 4, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ps) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(ps), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((pt, pseq)) = prev {
                    prop_assert!(ev.at >= pt);
                    if ev.at == pt {
                        // FIFO among equal timestamps
                        prop_assert!(ev.payload > pseq);
                    }
                }
                prev = Some((ev.at, ev.payload));
            }
        }

        #[test]
        fn prop_pop_until_partitions(times in proptest::collection::vec(0u64..1_000, 0..100), cut in 0u64..1_000) {
            let mut q = EventQueue::new();
            for &ps in &times {
                q.schedule(SimTime::from_ps(ps), ps);
            }
            let popped = q.pop_until(SimTime::from_ps(cut));
            prop_assert!(popped.iter().all(|e| e.at <= SimTime::from_ps(cut)));
            prop_assert_eq!(popped.len() + q.len(), times.len());
            if let Some(nt) = q.peek_time() {
                prop_assert!(nt > SimTime::from_ps(cut));
            }
        }
    }
}
