//! A deterministic discrete-event queue.
//!
//! Completions of in-flight simulated work (DMA transfers, kernel
//! executions, in-flight protocol messages) are scheduled here and popped in
//! timestamp order. Ties are broken by insertion sequence so that runs are
//! bit-for-bit reproducible regardless of scheduler internals.
//!
//! Storage is arena-backed: payloads live in a slab whose freed slots are
//! recycled through a free list, and the scheduling core orders small `Copy`
//! index entries. Once the queue has reached its high-water mark, a
//! steady-state schedule/pop cycle touches no allocator at all — the form
//! a 100-repetition campaign's inner loop needs.
//!
//! # Scheduling cores
//!
//! Two interchangeable cores sit behind the same API, selected by
//! [`QueuePolicy`]:
//!
//! * **Arena heap** — a hand-rolled index min-heap of `(at, seq, slot)`
//!   entries. O(log n) schedule/pop, unbeatable constants at small depth.
//! * **Calendar queue** — buckets of power-of-two time width holding
//!   intrusive singly-linked lists threaded through the arena itself
//!   (`slot_next`), in the style of Brown's calendar queues. Amortized O(1)
//!   schedule/pop at storm depth (10⁴–10⁶ concurrent events), with
//!   automatic bucket-count/width rebalancing and a fallback to the heap
//!   for degenerate distributions.
//!
//! Both cores pop the exact global minimum of `(at, seq)`, so the observable
//! event order — and therefore every simulation result built on top — is
//! bit-identical whichever core is active. The differential proptests at the
//! bottom of this file pin that equivalence against a reference
//! `BinaryHeap`.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

use crate::time::SimTime;

/// An event of payload `T` scheduled at a virtual instant.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion index (FIFO among equal timestamps).
    pub seq: u64,
    /// The payload.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour inside BinaryHeap (earliest first,
        // then lowest sequence number).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which scheduling core an [`EventQueue`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Start on the heap; promote to the calendar once the event population
    /// crosses [`CAL_ENTER_LEN`], and fall back to the heap if the time
    /// distribution degenerates (everything landing in one bucket).
    Auto,
    /// Always the arena heap (the pre-calendar core).
    Heap,
    /// Always the calendar queue; degenerate distributions trigger a
    /// bucket-width rebuild instead of a heap fallback.
    Calendar,
}

/// Event population at which `Auto` promotes heap → calendar. Below this
/// the heap's constants win; above it the calendar's O(1) does.
pub const CAL_ENTER_LEN: usize = 256;

/// Smallest bucket array the calendar keeps.
const CAL_MIN_BUCKETS: usize = 16;

/// Degeneracy check window: every this many pops the average scan work is
/// inspected.
const FALLBACK_WINDOW: u64 = 1024;

/// A calendar pop that scans more than this many entries/buckets on average
/// over a window is degenerate.
const FALLBACK_WORK_FACTOR: u64 = 16;

/// Intrusive-list terminator for `slot_next` / bucket heads.
const NIL: u32 = u32::MAX;

const POLICY_UNSET: u8 = 0;
const POLICY_AUTO: u8 = 1;
const POLICY_HEAP: u8 = 2;
const POLICY_CALENDAR: u8 = 3;

/// Process-wide default policy for queues built via [`EventQueue::new`] /
/// [`EventQueue::with_capacity`]. Resolved once from `DOEBENCH_QUEUE`
/// (`heap` / `calendar` / `auto`), overridable programmatically.
static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn encode_policy(p: QueuePolicy) -> u8 {
    match p {
        QueuePolicy::Auto => POLICY_AUTO,
        QueuePolicy::Heap => POLICY_HEAP,
        QueuePolicy::Calendar => POLICY_CALENDAR,
    }
}

/// Override the process-wide default [`QueuePolicy`]. Queues already
/// constructed are unaffected; `EventQueue::new()` from here on uses `p`.
/// Intended for A/B harnesses that run the same workload on both cores.
pub fn set_default_queue_policy(p: QueuePolicy) {
    DEFAULT_POLICY.store(encode_policy(p), AtomicOrdering::Relaxed);
}

/// The process-wide default [`QueuePolicy`]: `DOEBENCH_QUEUE` if set
/// (`heap` / `calendar`, anything else means `Auto`), else `Auto`.
pub fn default_queue_policy() -> QueuePolicy {
    match DEFAULT_POLICY.load(AtomicOrdering::Relaxed) {
        POLICY_AUTO => QueuePolicy::Auto,
        POLICY_HEAP => QueuePolicy::Heap,
        POLICY_CALENDAR => QueuePolicy::Calendar,
        _ => {
            // dessan::allow(env-read): documented queue-core A/B knob (DOEBENCH_QUEUE=heap|calendar), read once at first use.
            let p = match std::env::var("DOEBENCH_QUEUE").as_deref() {
                Ok("heap") => QueuePolicy::Heap,
                Ok("calendar") | Ok("cal") => QueuePolicy::Calendar,
                _ => QueuePolicy::Auto,
            };
            DEFAULT_POLICY.store(encode_policy(p), AtomicOrdering::Relaxed);
            p
        }
    }
}

/// A scheduler entry: ordering key plus the arena slot holding the payload.
///
/// `Copy` on purpose — sift operations move these, never the payloads.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    /// Min key: earliest timestamp first, then lowest sequence number.
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Which core is currently active (an `Auto` queue migrates between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Heap,
    Calendar,
}

/// A min-queue of timestamped events with deterministic FIFO tie-breaking.
///
/// Arena-backed: payloads live in `slots`, freed slots recycle through
/// `free`, and the active core ([`Mode`]) orders `Copy` index entries —
/// either a hand-rolled index min-heap or calendar buckets whose intrusive
/// lists are threaded through `slot_next`. After warm-up a schedule/pop
/// cycle performs zero heap allocations in either mode.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Payload slab; `None` marks a free slot.
    slots: Vec<Option<T>>,
    /// Indices of free slots in `slots`, reused LIFO.
    free: Vec<u32>,
    /// Per-slot timestamp (valid while the slot is occupied). SoA so the
    /// calendar's bucket scans stride dense arrays, not payloads.
    slot_at: Vec<SimTime>,
    /// Per-slot sequence number (valid while the slot is occupied).
    slot_seq: Vec<u64>,
    /// Intrusive bucket-list link (calendar mode; `NIL` terminates).
    slot_next: Vec<u32>,
    /// Index min-heap ordered by `(at, seq)` (heap mode).
    heap: Vec<HeapEntry>,
    /// Bucket heads (calendar mode); index = `(at.ps >> shift) & (len-1)`.
    buckets: Vec<u32>,
    /// log2 of the bucket time width in picoseconds.
    shift: u32,
    /// Cached exact global minimum (calendar mode; `None` iff empty).
    cal_min: Option<HeapEntry>,
    /// Same-timestamp unlink scratch for batch draining, reused.
    batch: Vec<(u64, u32)>,
    /// Scan-effort accumulator for the degeneracy check.
    scan_work: u64,
    /// Pops since the last degeneracy check.
    scan_ops: u64,
    /// Whether the last degeneracy trigger already tried a rebuild.
    rebuilt_once: bool,
    /// `Auto` re-promotes to the calendar only above this population
    /// (doubles on every fallback so a hostile distribution cannot thrash).
    reenter_len: usize,
    mode: Mode,
    policy: QueuePolicy,
    len: usize,
    next_seq: u64,
    last_popped: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue using the process-default [`QueuePolicy`].
    pub fn new() -> Self {
        Self::with_policy_and_capacity(default_queue_policy(), 0)
    }

    /// An empty queue with arena and index capacity for `cap` in-flight
    /// events, so the first `cap` schedules never reallocate.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_policy_and_capacity(default_queue_policy(), cap)
    }

    /// An empty queue pinned to `policy` regardless of the process default.
    pub fn with_policy(policy: QueuePolicy) -> Self {
        Self::with_policy_and_capacity(policy, 0)
    }

    /// An empty queue pinned to `policy`, pre-sized for `cap` events.
    pub fn with_policy_and_capacity(policy: QueuePolicy, cap: usize) -> Self {
        let mode = match policy {
            QueuePolicy::Calendar => Mode::Calendar,
            QueuePolicy::Auto | QueuePolicy::Heap => Mode::Heap,
        };
        let mut q = EventQueue {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            slot_at: Vec::with_capacity(cap),
            slot_seq: Vec::with_capacity(cap),
            slot_next: Vec::with_capacity(cap),
            heap: Vec::with_capacity(cap),
            buckets: Vec::new(),
            shift: 0,
            cal_min: None,
            batch: Vec::new(),
            scan_work: 0,
            scan_ops: 0,
            rebuilt_once: false,
            reenter_len: 0,
            mode,
            policy,
            len: 0,
            next_seq: 0,
            last_popped: SimTime::ZERO,
        };
        if mode == Mode::Calendar {
            q.buckets.resize(CAL_MIN_BUCKETS, NIL);
        }
        q
    }

    /// The policy this queue was built with.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Schedule `payload` to fire at `at`. Returns the event's sequence id.
    // doebench::hot
    pub fn schedule(&mut self, at: SimTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                self.slot_at[slot as usize] = at;
                self.slot_seq[slot as usize] = seq;
                slot
            }
            None => {
                assert!(self.slots.len() < NIL as usize, "event arena overflow");
                self.slots.push(Some(payload));
                self.slot_at.push(at);
                self.slot_seq.push(seq);
                self.slot_next.push(NIL);
                (self.slots.len() - 1) as u32
            }
        };
        self.len += 1;
        match self.mode {
            Mode::Heap => {
                self.heap.push(HeapEntry { at, seq, slot });
                self.sift_up(self.heap.len() - 1);
                if self.policy == QueuePolicy::Auto
                    && self.len >= CAL_ENTER_LEN.max(self.reenter_len)
                {
                    self.migrate_to_calendar();
                }
            }
            Mode::Calendar => {
                self.cal_insert(HeapEntry { at, seq, slot });
                if self.len > self.buckets.len() {
                    self.cal_rebuild();
                }
            }
        }
        seq
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.mode {
            Mode::Heap => self.heap.first().map(|e| e.at),
            Mode::Calendar => self.cal_min.map(|e| e.at),
        }
    }

    /// Pop the earliest event.
    ///
    /// # Panics
    /// Panics if event timestamps would move backwards relative to a
    /// previously popped event — that indicates a scheduling bug upstream.
    // doebench::hot
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let entry = match self.mode {
            Mode::Heap => {
                if self.heap.is_empty() {
                    return None;
                }
                let entry = self.heap.swap_remove(0);
                if !self.heap.is_empty() {
                    self.sift_down(0);
                }
                entry
            }
            Mode::Calendar => {
                let entry = self.cal_min?;
                self.cal_unlink(entry.at, entry.slot);
                self.cal_min = if self.len > 1 {
                    Some(self.cal_find_min_from(entry.at))
                } else {
                    None
                };
                self.cal_after_pop(1);
                entry
            }
        };
        self.len -= 1;
        assert!(
            entry.at >= self.last_popped,
            "event queue time went backwards: {:?} after {:?}",
            entry.at,
            self.last_popped
        );
        self.last_popped = entry.at;
        let Some(payload) = self.slots[entry.slot as usize].take() else {
            unreachable!("scheduler entry points at an occupied slot")
        };
        self.free.push(entry.slot);
        Some(Scheduled {
            at: entry.at,
            seq: entry.seq,
            payload,
        })
    }

    /// Pop the entire batch of events sharing the earliest timestamp,
    /// handing each to `sink` in sequence order. Returns the shared
    /// timestamp, or `None` on an empty queue.
    ///
    /// In calendar mode all ties live in one bucket, so the batch is
    /// unlinked in a single pass instead of one min-search per event —
    /// the fast path for lock-step worlds where thousands of ranks fire
    /// at the same instant.
    // doebench::hot
    pub fn drain_step(&mut self, mut sink: impl FnMut(Scheduled<T>)) -> Option<SimTime> {
        let t = self.peek_time()?;
        match self.mode {
            Mode::Heap => {
                while self.peek_time() == Some(t) {
                    let Some(ev) = self.pop() else { break };
                    sink(ev);
                }
            }
            Mode::Calendar => {
                self.cal_unlink_ties(t);
                // Pop in sequence order, recycling slots in that same order
                // so the free list stays bit-identical with the heap core.
                self.batch.sort_unstable();
                assert!(
                    t >= self.last_popped,
                    "event queue time went backwards: {:?} after {:?}",
                    t,
                    self.last_popped
                );
                self.last_popped = t;
                let n = self.batch.len();
                self.len -= n;
                for i in 0..n {
                    let (seq, slot) = self.batch[i];
                    let Some(payload) = self.slots[slot as usize].take() else {
                        unreachable!("bucket entry points at an occupied slot")
                    };
                    self.free.push(slot);
                    sink(Scheduled {
                        at: t,
                        seq,
                        payload,
                    });
                }
                self.cal_min = if self.len > 0 {
                    Some(self.cal_find_min_from(t))
                } else {
                    None
                };
                self.cal_after_pop(n as u64);
            }
        }
        Some(t)
    }

    /// Pop the entire batch of events sharing the earliest timestamp into
    /// `out` (cleared first), in sequence order. Returns the shared
    /// timestamp. `out` is caller-owned so steady-state loops reuse its
    /// capacity and never allocate.
    // doebench::hot
    pub fn pop_batch(&mut self, out: &mut Vec<Scheduled<T>>) -> Option<SimTime> {
        out.clear();
        self.drain_step(|ev| out.push(ev))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < n && self.heap[right].key() < self.heap[left].key() {
                smallest = right;
            }
            if self.heap[smallest].key() < self.heap[i].key() {
                self.heap.swap(i, smallest);
                i = smallest;
            } else {
                break;
            }
        }
    }

    /// Bucket index of timestamp `at` under the current geometry.
    #[inline]
    fn cal_bucket(&self, at: SimTime) -> usize {
        ((at.as_ps() >> self.shift) as usize) & (self.buckets.len() - 1)
    }

    /// Link `e` into its bucket (front insertion) and refresh the cached
    /// minimum.
    #[inline]
    fn cal_insert(&mut self, e: HeapEntry) {
        let b = self.cal_bucket(e.at);
        self.slot_next[e.slot as usize] = self.buckets[b];
        self.buckets[b] = e.slot;
        if self.cal_min.is_none_or(|m| e.key() < m.key()) {
            self.cal_min = Some(e);
        }
    }

    /// Unlink `slot` (scheduled at `at`) from its bucket list.
    fn cal_unlink(&mut self, at: SimTime, slot: u32) {
        let b = self.cal_bucket(at);
        let mut cur = self.buckets[b];
        let mut prev = NIL;
        while cur != NIL {
            let next = self.slot_next[cur as usize];
            if cur == slot {
                if prev == NIL {
                    self.buckets[b] = next;
                } else {
                    self.slot_next[prev as usize] = next;
                }
                return;
            }
            prev = cur;
            cur = next;
        }
        unreachable!("calendar minimum not found in its bucket")
    }

    /// Unlink every event scheduled exactly at `t` from `t`'s bucket into
    /// the `batch` scratch as `(seq, slot)` pairs. All ties share a bucket
    /// because equal timestamps map to equal bucket indices.
    fn cal_unlink_ties(&mut self, t: SimTime) {
        self.batch.clear();
        let b = self.cal_bucket(t);
        let mut cur = self.buckets[b];
        let mut prev = NIL;
        while cur != NIL {
            let next = self.slot_next[cur as usize];
            if self.slot_at[cur as usize] == t {
                if prev == NIL {
                    self.buckets[b] = next;
                } else {
                    self.slot_next[prev as usize] = next;
                }
                self.batch.push((self.slot_seq[cur as usize], cur));
            } else {
                prev = cur;
            }
            cur = next;
        }
        debug_assert!(!self.batch.is_empty(), "peeked timestamp has no events");
    }

    /// Exact global minimum of the remaining events, scanning forward from
    /// the virtual bucket containing `from` (every pending event is at or
    /// after `from`, the timestamp just popped). Work is accounted in
    /// `scan_work` for the degeneracy check.
    fn cal_find_min_from(&mut self, from: SimTime) -> HeapEntry {
        let nb = self.buckets.len();
        let first_vb = from.as_ps() >> self.shift;
        for vb in first_vb..first_vb + nb as u64 {
            let b = (vb as usize) & (nb - 1);
            let mut best: Option<HeapEntry> = None;
            let mut cur = self.buckets[b];
            while cur != NIL {
                self.scan_work += 1;
                // Same bucket index can hold later "years"; only entries in
                // this window compete.
                if self.slot_at[cur as usize].as_ps() >> self.shift == vb {
                    let cand = HeapEntry {
                        at: self.slot_at[cur as usize],
                        seq: self.slot_seq[cur as usize],
                        slot: cur,
                    };
                    if best.is_none_or(|bst| cand.key() < bst.key()) {
                        best = Some(cand);
                    }
                }
                cur = self.slot_next[cur as usize];
            }
            if let Some(found) = best {
                return found;
            }
            self.scan_work += 1;
        }
        // A whole lap of empty windows: the population is sparse relative
        // to the bucket width. Find the minimum directly.
        self.cal_global_min()
    }

    /// O(n + buckets) direct minimum scan — the rescue path when a full
    /// window lap comes up empty.
    fn cal_global_min(&mut self) -> HeapEntry {
        let mut best: Option<HeapEntry> = None;
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                self.scan_work += 1;
                let cand = HeapEntry {
                    at: self.slot_at[cur as usize],
                    seq: self.slot_seq[cur as usize],
                    slot: cur,
                };
                if best.is_none_or(|bst| cand.key() < bst.key()) {
                    best = Some(cand);
                }
                cur = self.slot_next[cur as usize];
            }
        }
        let Some(found) = best else {
            unreachable!("global-min scan on a non-empty calendar")
        };
        found
    }

    /// Post-pop bookkeeping: shrink oversized bucket arrays and check for
    /// degenerate distributions every [`FALLBACK_WINDOW`] pops.
    fn cal_after_pop(&mut self, popped: u64) {
        if self.len * 8 < self.buckets.len() && self.buckets.len() > CAL_MIN_BUCKETS {
            self.cal_rebuild();
        }
        self.scan_ops += popped;
        if self.scan_ops >= FALLBACK_WINDOW {
            let degenerate = self.scan_work > FALLBACK_WORK_FACTOR * self.scan_ops;
            self.scan_ops = 0;
            self.scan_work = 0;
            if degenerate {
                if self.rebuilt_once && self.policy == QueuePolicy::Auto {
                    // A width re-estimate did not help: the distribution is
                    // hostile to bucketing (e.g. one massive tie cluster
                    // popped one event at a time). Hand back to the heap.
                    self.reenter_len = (self.len * 2).max(CAL_ENTER_LEN * 2);
                    self.migrate_to_heap();
                } else {
                    self.rebuilt_once = true;
                    self.cal_rebuild();
                }
            } else {
                self.rebuilt_once = false;
            }
        }
    }

    /// Rebuild the calendar geometry from the live population: bucket count
    /// ≈ 2·len (power of two) and bucket width ≈ the mean inter-event gap
    /// rounded to a power of two, then relink every event. O(n + buckets),
    /// amortized O(1) per operation by the doubling schedule.
    fn cal_rebuild(&mut self) {
        // Concatenate all bucket lists into one chain through `slot_next`.
        let mut head = NIL;
        let mut min_at = u64::MAX;
        let mut max_at = 0u64;
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                let next = self.slot_next[cur as usize];
                let ps = self.slot_at[cur as usize].as_ps();
                min_at = min_at.min(ps);
                max_at = max_at.max(ps);
                self.slot_next[cur as usize] = head;
                head = cur;
                cur = next;
            }
        }
        let nb = (self.len * 2).next_power_of_two().max(CAL_MIN_BUCKETS);
        // Mean gap between consecutive events across the occupied span;
        // ≥ 1 ps, capped so the shift stays meaningful.
        let span = max_at.saturating_sub(min_at);
        let gap = if self.len > 1 {
            (span / self.len as u64).max(1)
        } else {
            1
        };
        self.shift = gap.ilog2().min(40);
        self.buckets.clear();
        self.buckets.resize(nb, NIL);
        let mut cur = head;
        while cur != NIL {
            let next = self.slot_next[cur as usize];
            let b = self.cal_bucket(self.slot_at[cur as usize]);
            self.slot_next[cur as usize] = self.buckets[b];
            self.buckets[b] = cur;
            cur = next;
        }
    }

    /// Heap → calendar: size the geometry for the current population and
    /// link every heap entry into its bucket. The cached minimum is the
    /// heap root.
    fn migrate_to_calendar(&mut self) {
        self.mode = Mode::Calendar;
        self.cal_min = self.heap.first().copied();
        if self.buckets.is_empty() {
            self.buckets.resize(CAL_MIN_BUCKETS, NIL);
        } else {
            for b in self.buckets.iter_mut() {
                *b = NIL;
            }
        }
        while let Some(e) = self.heap.pop() {
            let b = self.cal_bucket(e.at);
            self.slot_next[e.slot as usize] = self.buckets[b];
            self.buckets[b] = e.slot;
        }
        self.cal_rebuild();
        self.scan_work = 0;
        self.scan_ops = 0;
        self.rebuilt_once = false;
    }

    /// Calendar → heap: collect every bucket entry and heapify. Pop order
    /// is unaffected — both cores pop the total order of `(at, seq)`.
    fn migrate_to_heap(&mut self) {
        self.heap.clear();
        for b in 0..self.buckets.len() {
            let mut cur = self.buckets[b];
            while cur != NIL {
                self.heap.push(HeapEntry {
                    at: self.slot_at[cur as usize],
                    seq: self.slot_seq[cur as usize],
                    slot: cur,
                });
                cur = self.slot_next[cur as usize];
            }
            self.buckets[b] = NIL;
        }
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            self.sift_down(i);
        }
        self.cal_min = None;
        self.mode = Mode::Heap;
    }

    /// Pop all events with timestamps `<= t`, earliest first, handing each
    /// to `sink` without building an intermediate `Vec` — the
    /// allocation-free form for hot event loops.
    pub fn drain_until(&mut self, t: SimTime, mut sink: impl FnMut(Scheduled<T>)) {
        while self.peek_time().is_some_and(|next| next <= t) {
            let Some(ev) = self.pop() else { break };
            sink(ev);
        }
    }

    /// Pop all events with timestamps `<= t`, earliest first.
    ///
    /// Allocates a fresh `Vec` per call; prefer [`Self::drain_until`] in
    /// loops that run per simulated operation.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<Scheduled<T>> {
        let mut out = Vec::new();
        self.drain_until(t, |ev| out.push(ev));
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every pending event (e.g. device reset). Retains the arena and
    /// index capacity for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.slot_at.clear();
        self.slot_seq.clear();
        self.slot_next.clear();
        self.heap.clear();
        for b in self.buckets.iter_mut() {
            *b = NIL;
        }
        self.cal_min = None;
        self.len = 0;
        self.scan_work = 0;
        self.scan_ops = 0;
        self.mode = match self.policy {
            QueuePolicy::Calendar => Mode::Calendar,
            QueuePolicy::Auto | QueuePolicy::Heap => Mode::Heap,
        };
    }

    /// Capacity of the payload arena — its high-water mark of simultaneous
    /// in-flight events (diagnostic; steady state should plateau here).
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// True while the calendar core is active (diagnostic).
    pub fn is_calendar(&self) -> bool {
        self.mode == Mode::Calendar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(1.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_is_inclusive() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.schedule(t(3.0), 3);
        let popped = q.pop_until(t(2.0));
        assert_eq!(popped.iter().map(|e| e.payload).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_until_visits_in_order_without_collecting() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), 2);
        q.schedule(t(1.0), 1);
        q.schedule(t(3.0), 3);
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        assert_eq!(seen, [1, 2]);
        assert_eq!(q.len(), 1);
        // Nothing at or before the cut: sink never runs.
        q.drain_until(t(2.5), |_| unreachable!("no events <= 2.5 us left"));
    }

    #[test]
    fn drain_until_on_empty_queue_never_calls_sink() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.drain_until(t(100.0), |_| unreachable!("empty queue has no events"));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_until_past_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(t(i as f64), i);
        }
        let mut seen = Vec::new();
        q.drain_until(t(1e9), |ev| seen.push(ev.payload));
        assert_eq!(seen, [0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drain_until_tie_break_at_exactly_t_is_inclusive_and_fifo() {
        let mut q = EventQueue::new();
        // Three events at exactly the cut, one just after, one before.
        q.schedule(t(2.0), "tie-1");
        q.schedule(t(2.0) + SimDuration::from_ps(1), "after");
        q.schedule(t(1.0), "before");
        q.schedule(t(2.0), "tie-2");
        q.schedule(t(2.0), "tie-3");
        let mut seen = Vec::new();
        q.drain_until(t(2.0), |ev| seen.push(ev.payload));
        // Inclusive at t, FIFO among the equal timestamps.
        assert_eq!(seen, ["before", "tie-1", "tie-2", "tie-3"]);
        assert_eq!(q.len(), 1);
        let rest = q.pop().map(|e| e.payload);
        assert_eq!(rest, Some("after"));
    }

    #[test]
    fn drain_until_repeated_calls_resume_where_they_stopped() {
        let mut q = EventQueue::new();
        for i in 0..6 {
            q.schedule(t(i as f64), i);
        }
        let mut first = Vec::new();
        q.drain_until(t(2.0), |ev| first.push(ev.payload));
        assert_eq!(first, [0, 1, 2]);
        let mut second = Vec::new();
        q.drain_until(t(5.0), |ev| second.push(ev.payload));
        assert_eq!(second, [3, 4, 5]);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn arena_slots_are_recycled_in_steady_state() {
        let mut q = EventQueue::with_capacity(4);
        // Warm up to 3 simultaneous in-flight events.
        for i in 0..3 {
            q.schedule(t(i as f64), i);
        }
        // Steady state: pop one, schedule one, a thousand times over.
        for i in 3..1000 {
            q.pop().expect("queue holds 3 events");
            q.schedule(t(i as f64), i);
        }
        // The arena never grew past the high-water mark.
        assert_eq!(q.arena_len(), 3);
        assert_eq!(q.len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![997, 998, 999]);
    }

    #[test]
    fn forced_calendar_matches_forced_heap_on_small_runs() {
        let mut cal = EventQueue::with_policy(QueuePolicy::Calendar);
        let mut heap = EventQueue::with_policy(QueuePolicy::Heap);
        assert!(cal.is_calendar());
        assert!(!heap.is_calendar());
        for i in 0..50u64 {
            let at = SimTime::from_ps((i * 37) % 400);
            cal.schedule(at, i);
            heap.schedule(at, i);
        }
        loop {
            let (c, h) = (cal.pop(), heap.pop());
            match (c, h) {
                (None, None) => break,
                (Some(c), Some(h)) => {
                    assert_eq!((c.at, c.seq, c.payload), (h.at, h.seq, h.payload));
                }
                other => panic!("pop mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn auto_promotes_to_calendar_past_threshold_and_keeps_order() {
        let mut q = EventQueue::with_policy(QueuePolicy::Auto);
        let n = CAL_ENTER_LEN as u64 + 200;
        for i in 0..n {
            q.schedule(SimTime::from_ps(i * 731 % 100_000), i);
        }
        assert!(q.is_calendar(), "population {n} should be on the calendar");
        let mut prev = (SimTime::ZERO, 0u64);
        let mut popped = 0u64;
        while let Some(ev) = q.pop() {
            assert!((ev.at, ev.seq) >= prev, "order broke at {ev:?}");
            prev = (ev.at, ev.seq);
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn auto_falls_back_to_heap_on_degenerate_ties() {
        // Everything at one instant, popped one at a time: the calendar's
        // per-pop bucket scan is O(n), which the degeneracy check catches.
        let mut q = EventQueue::with_policy(QueuePolicy::Auto);
        let n = 6_000u64;
        for i in 0..n {
            q.schedule(t(5.0), i);
        }
        assert!(q.is_calendar());
        for i in 0..n {
            let ev = q.pop().expect("n events pending");
            assert_eq!(ev.payload, i, "FIFO among ties must survive fallback");
        }
        assert!(
            !q.is_calendar(),
            "degenerate tie cluster should have fallen back to the heap"
        );
    }

    #[test]
    fn pop_batch_hands_out_whole_tie_groups() {
        for policy in [QueuePolicy::Heap, QueuePolicy::Calendar] {
            let mut q = EventQueue::with_policy(policy);
            q.schedule(t(1.0), 10);
            q.schedule(t(2.0), 20);
            q.schedule(t(1.0), 11);
            q.schedule(t(1.0), 12);
            let mut batch = Vec::new();
            let at = q.pop_batch(&mut batch);
            assert_eq!(at, Some(t(1.0)));
            assert_eq!(
                batch.iter().map(|e| e.payload).collect::<Vec<_>>(),
                [10, 11, 12],
                "policy {policy:?}"
            );
            let at = q.pop_batch(&mut batch);
            assert_eq!(at, Some(t(2.0)));
            assert_eq!(batch.iter().map(|e| e.payload).collect::<Vec<_>>(), [20]);
            assert_eq!(q.pop_batch(&mut batch), None);
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn drain_step_visits_ties_in_seq_order() {
        let mut q = EventQueue::with_policy(QueuePolicy::Calendar);
        for i in 0..100u64 {
            q.schedule(t(1.0), i);
        }
        q.schedule(t(3.0), 999);
        let mut seen = Vec::new();
        let at = q.drain_step(|ev| seen.push(ev.payload));
        assert_eq!(at, Some(t(1.0)));
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn calendar_survives_rebuilds_across_wide_time_spans() {
        // Schedule in waves whose spans differ by orders of magnitude so
        // the width estimate must be re-picked, then check total order.
        let mut q = EventQueue::with_policy(QueuePolicy::Calendar);
        let mut expect = Vec::new();
        for i in 0..400u64 {
            let at = SimTime::from_ps(i * 3);
            q.schedule(at, i);
            expect.push((at, i));
        }
        for i in 400..800u64 {
            let at = SimTime::from_ps(1_000_000 + (i - 400) * 1_000_000);
            q.schedule(at, i);
            expect.push((at, i));
        }
        expect.sort();
        let mut got = Vec::new();
        while let Some(ev) = q.pop() {
            got.push((ev.at, ev.payload));
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn default_policy_override_is_visible_to_new() {
        // All policies produce identical observable behaviour, so flipping
        // the process default here cannot perturb concurrent tests.
        let before = default_queue_policy();
        set_default_queue_policy(QueuePolicy::Heap);
        assert_eq!(default_queue_policy(), QueuePolicy::Heap);
        let q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.policy(), QueuePolicy::Heap);
        set_default_queue_policy(before);
    }

    /// Operations a queue run is built from, for the differential proptest.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        /// Push at exactly the current floor — maximizes same-timestamp ties.
        PushTie,
        Pop,
        PopBatch,
        DrainUntil(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..1_000).prop_map(Op::Push),
            (0u64..12).prop_map(Op::Push),
            Just(Op::PushTie),
            Just(Op::Pop),
            Just(Op::PopBatch),
            (0u64..1_000).prop_map(Op::DrainUntil),
        ]
    }

    /// The three queues under differential test: the two real cores pinned
    /// (no adaptive migration) plus an adaptive Auto queue, all checked
    /// against a reference `BinaryHeap`.
    struct Trio {
        heap: EventQueue<u32>,
        cal: EventQueue<u32>,
        auto_q: EventQueue<u32>,
    }

    impl Trio {
        fn pop(&mut self) -> [Option<Scheduled<u32>>; 3] {
            [self.heap.pop(), self.cal.pop(), self.auto_q.pop()]
        }
    }

    proptest! {
        /// Satellite: calendar queue vs. arena heap vs. reference
        /// `BinaryHeap` — identical observable (timestamp, seq, payload)
        /// pop order and identical arena evolution under arbitrary
        /// interleaved push / tie-push / pop / pop_batch / drain_until
        /// sequences.
        #[test]
        fn prop_calendar_heap_and_reference_agree(ops in proptest::collection::vec(op_strategy(), 0..160)) {
            use std::collections::BinaryHeap;

            let mut q = Trio {
                heap: EventQueue::with_policy(QueuePolicy::Heap),
                cal: EventQueue::with_policy(QueuePolicy::Calendar),
                auto_q: EventQueue::with_policy(QueuePolicy::Auto),
            };
            let mut reference: BinaryHeap<Scheduled<u32>> = BinaryHeap::new();
            let mut ref_seq = 0u64;
            // The reference has no monotonicity guard, so only advance time:
            // drop ops that would schedule before the last observed pop.
            let mut floor = SimTime::ZERO;
            let mut payload = 0u32;
            let mut batch = Vec::new();

            let push = |q: &mut Trio,
                            reference: &mut BinaryHeap<Scheduled<u32>>,
                            ref_seq: &mut u64,
                            payload: &mut u32,
                            at: SimTime| {
                for queue in [&mut q.heap, &mut q.cal, &mut q.auto_q] {
                    let seq = queue.schedule(at, *payload);
                    assert_eq!(seq, *ref_seq);
                }
                reference.push(Scheduled { at, seq: *ref_seq, payload: *payload });
                *ref_seq += 1;
                *payload += 1;
            };

            for op in ops {
                match op {
                    Op::Push(ps) => {
                        let at = floor + SimDuration::from_ps(ps);
                        push(&mut q, &mut reference, &mut ref_seq, &mut payload, at);
                    }
                    Op::PushTie => {
                        push(&mut q, &mut reference, &mut ref_seq, &mut payload, floor);
                    }
                    Op::Pop => {
                        let got = q.pop();
                        let want = reference.pop();
                        for g in &got {
                            match (g, &want) {
                                (None, None) => {}
                                (Some(g), Some(w)) => {
                                    prop_assert_eq!(g.at, w.at);
                                    prop_assert_eq!(g.seq, w.seq);
                                    prop_assert_eq!(g.payload, w.payload);
                                    floor = g.at;
                                }
                                (g, w) => prop_assert!(false, "pop mismatch: {:?} vs {:?}", g, w),
                            }
                        }
                    }
                    Op::PopBatch => {
                        let mut want = Vec::new();
                        if let Some(first) = reference.peek().map(|e| e.at) {
                            while reference.peek().is_some_and(|e| e.at == first) {
                                let Some(e) = reference.pop() else { break };
                                want.push(e);
                            }
                            floor = first;
                        }
                        for queue in [&mut q.heap, &mut q.cal, &mut q.auto_q] {
                            let at = queue.pop_batch(&mut batch);
                            prop_assert_eq!(at, want.first().map(|e| e.at));
                            prop_assert_eq!(batch.len(), want.len());
                            for (g, w) in batch.iter().zip(&want) {
                                prop_assert_eq!(g.at, w.at);
                                prop_assert_eq!(g.seq, w.seq);
                                prop_assert_eq!(g.payload, w.payload);
                            }
                        }
                    }
                    Op::DrainUntil(ps) => {
                        let cut = floor + SimDuration::from_ps(ps);
                        let mut want = Vec::new();
                        while reference.peek().is_some_and(|e| e.at <= cut) {
                            let Some(e) = reference.pop() else { break };
                            want.push(e);
                        }
                        for queue in [&mut q.heap, &mut q.cal, &mut q.auto_q] {
                            let mut got = Vec::new();
                            queue.drain_until(cut, |ev| got.push(ev));
                            prop_assert_eq!(got.len(), want.len());
                            for (g, w) in got.iter().zip(&want) {
                                prop_assert_eq!(g.at, w.at);
                                prop_assert_eq!(g.seq, w.seq);
                                prop_assert_eq!(g.payload, w.payload);
                            }
                        }
                        if let Some(last) = want.last() {
                            floor = last.at;
                        }
                    }
                }
                for queue in [&q.heap, &q.cal, &q.auto_q] {
                    prop_assert_eq!(queue.len(), reference.len());
                    prop_assert_eq!(queue.peek_time(), reference.peek().map(|e| e.at));
                }
                // The free lists are recycled in identical order, so the
                // payload arenas of all three queues evolve in lock-step.
                prop_assert_eq!(q.heap.arena_len(), q.cal.arena_len());
                prop_assert_eq!(q.heap.arena_len(), q.auto_q.arena_len());
            }
        }
    }

    proptest! {
        /// Deep-population differential run: enough events that Auto
        /// promotes to the calendar and rebuilds fire, checked pop-by-pop.
        #[test]
        fn prop_deep_population_pops_identically(
            times in proptest::collection::vec(0u64..50_000, 300..600),
        ) {
            let mut heap = EventQueue::with_policy(QueuePolicy::Heap);
            let mut auto_q = EventQueue::with_policy(QueuePolicy::Auto);
            for (i, &ps) in times.iter().enumerate() {
                heap.schedule(SimTime::from_ps(ps), i);
                auto_q.schedule(SimTime::from_ps(ps), i);
            }
            prop_assert!(auto_q.is_calendar());
            loop {
                let (h, a) = (heap.pop(), auto_q.pop());
                match (h, a) {
                    (None, None) => break,
                    (Some(h), Some(a)) => {
                        prop_assert_eq!(h.at, a.at);
                        prop_assert_eq!(h.seq, a.seq);
                        prop_assert_eq!(h.payload, a.payload);
                    }
                    (h, a) => prop_assert!(false, "pop mismatch: {:?} vs {:?}", h, a),
                }
            }
        }

        #[test]
        fn prop_pop_order_is_sorted_and_stable(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &ps) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(ps), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some(ev) = q.pop() {
                if let Some((pt, pseq)) = prev {
                    prop_assert!(ev.at >= pt);
                    if ev.at == pt {
                        // FIFO among equal timestamps
                        prop_assert!(ev.payload > pseq);
                    }
                }
                prev = Some((ev.at, ev.payload));
            }
        }

        #[test]
        fn prop_pop_until_partitions(times in proptest::collection::vec(0u64..1_000, 0..100), cut in 0u64..1_000) {
            let mut q = EventQueue::new();
            for &ps in &times {
                q.schedule(SimTime::from_ps(ps), ps);
            }
            let popped = q.pop_until(SimTime::from_ps(cut));
            prop_assert!(popped.iter().all(|e| e.at <= SimTime::from_ps(cut)));
            prop_assert_eq!(popped.len() + q.len(), times.len());
            if let Some(nt) = q.peek_time() {
                prop_assert!(nt > SimTime::from_ps(cut));
            }
        }
    }
}
