//! The host-side virtual clock.
//!
//! Simulated runtimes are written in the style of the real runtimes they
//! replace: a call like `stream.synchronize()` *blocks the host* until the
//! device drains. In the simulation the "host" is a [`Clock`] that each
//! blocking call advances. Timestamps read from the clock play the role of
//! `clock_gettime` in the original benchmarks.

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// A clock starting at an arbitrary instant.
    pub fn starting_at(t: SimTime) -> Self {
        Clock { now: t }
    }

    /// The current virtual instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `d` and return the new instant.
    #[inline]
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Jump forward to `t`. A no-op if `t` is in the past — the clock never
    /// moves backwards (mirrors waiting on an already-complete event).
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        self.now = self.now.max(t);
        self.now
    }

    /// Run `f` and return its result together with the virtual time it took,
    /// measured as the clock movement across the call.
    pub fn timed<T>(&mut self, f: impl FnOnce(&mut Clock) -> T) -> (T, SimDuration) {
        let start = self.now;
        let out = f(self);
        (out, self.now.since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(1.0));
        c.advance(SimDuration::from_us(2.0));
        assert_eq!(c.now().as_us(), 3.0);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_us(5.0));
        c.advance_to(SimTime::from_ps(10)); // in the past
        assert_eq!(c.now().as_us(), 5.0);
        c.advance_to(SimTime::ZERO + SimDuration::from_us(8.0));
        assert_eq!(c.now().as_us(), 8.0);
    }

    #[test]
    fn timed_measures_clock_movement() {
        let mut c = Clock::new();
        let (val, dt) = c.timed(|c| {
            c.advance(SimDuration::from_ns(250.0));
            42
        });
        assert_eq!(val, 42);
        assert_eq!(dt.as_ns(), 250.0);
    }

    #[test]
    fn starting_at_offsets_epoch() {
        let t = SimTime::from_ps(123);
        assert_eq!(Clock::starting_at(t).now(), t);
    }
}
