//! Operation tracing with Chrome trace-event export.
//!
//! The simulated runtimes can record every operation (kernel launch, DMA
//! copy, synchronize, message send) as a timed span on a named track.
//! [`Trace::to_chrome_json`] emits the `chrome://tracing` / Perfetto
//! "trace event" JSON format, so a simulated benchmark run can be inspected
//! on the same timeline tooling used for real GPU profiles.

use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// One completed span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Operation name (e.g. `launch`, `memcpy h2d 128B`).
    pub name: String,
    /// Category (e.g. `gpu`, `mpi`, `wire`).
    pub category: &'static str,
    /// Track (thread row in the viewer): e.g. `gpu0/stream1`, `rank0`.
    pub track: String,
    /// Span start.
    pub start: SimTime,
    /// Span duration.
    pub duration: SimDuration,
}

/// A collection of spans on the virtual timeline.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a span.
    pub fn record(
        &mut self,
        name: impl Into<String>,
        category: &'static str,
        track: impl Into<String>,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.spans.push(Span {
            name: name.into(),
            category,
            track: track.into(),
            start,
            duration,
        });
    }

    /// Recorded spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total busy time per track, sorted by track name.
    pub fn busy_by_track(&self) -> Vec<(String, SimDuration)> {
        let mut map: std::collections::BTreeMap<String, SimDuration> = Default::default();
        for s in &self.spans {
            let e = map.entry(s.track.clone()).or_insert(SimDuration::ZERO);
            *e += s.duration;
        }
        map.into_iter().collect()
    }

    /// Emit the Chrome trace-event JSON array (complete events, `ph: "X"`,
    /// microsecond timestamps).
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":\"{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
                esc(&s.name),
                esc(s.category),
                esc(&s.track),
                s.start.as_us(),
                s.duration.as_us(),
            );
            out.push_str(if i + 1 < self.spans.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn records_and_reports() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.record(
            "launch",
            "gpu",
            "gpu0/stream0",
            t(1.0),
            SimDuration::from_us(2.0),
        );
        tr.record(
            "sync",
            "gpu",
            "gpu0/stream0",
            t(3.0),
            SimDuration::from_us(0.5),
        );
        tr.record("send", "mpi", "rank0", t(0.0), SimDuration::from_us(0.1));
        assert_eq!(tr.len(), 3);
        let busy = tr.busy_by_track();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].0, "gpu0/stream0");
        assert!((busy[0].1.as_us() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut tr = Trace::new();
        tr.record(
            "a \"quoted\"",
            "gpu",
            "t\\0",
            t(1.0),
            SimDuration::from_us(2.0),
        );
        tr.record("b", "mpi", "t1", t(2.0), SimDuration::from_us(1.0));
        let j = tr.to_chrome_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 2);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("t\\\\0"));
        // One comma between two events.
        assert_eq!(j.matches("},").count(), 1);
    }

    #[test]
    fn empty_trace_serializes_to_an_empty_array() {
        assert_eq!(Trace::new().to_chrome_json(), "[\n]");
    }
}
