//! Virtual time, discrete-event scheduling, and deterministic noise models.
//!
//! Everything in the `doebench` simulation stack is clocked by a virtual
//! clock with **picosecond resolution**. Costs of simulated operations
//! (a DMA setup, a link traversal, a kernel dispatch) are expressed as
//! [`SimDuration`]s; the state machines in the runtime crates advance a
//! [`Clock`] or schedule completions on an [`EventQueue`].
//!
//! Measurement noise — what turns a deterministic model into a distribution
//! with a non-degenerate standard deviation across the paper's 100 "binary
//! runs" — comes from [`noise::Jitter`], which perturbs each primitive cost
//! with seeded, reproducible Gaussian multiplicative error.
//!
//! # Example
//!
//! ```
//! use doe_simtime::{Clock, SimDuration};
//!
//! let mut clock = Clock::new();
//! clock.advance(SimDuration::from_us(1.5));
//! clock.advance(SimDuration::from_ns(500.0));
//! assert_eq!(clock.now().as_us(), 2.0);
//! ```

pub mod clock;
pub mod event;
pub mod noise;
pub mod rng;
pub mod shard;
pub mod time;
pub mod trace;

pub use clock::Clock;
pub use event::{
    default_queue_policy, set_default_queue_policy, EventQueue, QueuePolicy, Scheduled,
};
pub use noise::Jitter;
pub use rng::SimRng;
pub use shard::{
    default_shard_policy, serial_exec, set_default_shard_policy, Lane, LaneCtx, ShardPolicy,
    ShardRunner, ShardStats,
};
pub use time::{SimDuration, SimTime};
pub use trace::{Span, Trace};
