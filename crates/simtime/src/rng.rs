//! Deterministic pseudo-random numbers for the simulation.
//!
//! Reproducibility is a hard requirement: the paper reports mean ± σ over
//! 100 "binary runs", and we want `doebench table5` to print the same
//! numbers on every invocation. [`SimRng`] is a small, self-contained
//! xoshiro256**-style generator seeded by SplitMix64, with a string-keyed
//! stream-derivation helper so independent subsystems (machine × benchmark
//! × run-index) get decorrelated but stable streams.

/// SplitMix64 step — used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, for deriving stream keys from labels.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic xoshiro256** pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Seed from a single `u64`.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive a stream for a labelled subsystem. Streams derived with
    /// different labels or indices are statistically independent; the same
    /// `(seed, label, index)` always produces the same stream.
    pub fn stream(seed: u64, label: &str, index: u64) -> Self {
        let key = fnv1a(label.as_bytes()) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::from_seed(seed ^ key.rotate_left(17))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for simulation jitter; not for cryptography).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// One Box–Muller pair: `(r·cosθ, r·sinθ)`.
    #[inline]
    fn gauss_pair(&mut self) -> (f64, f64) {
        // Avoid u == 0 so ln() stays finite.
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        (r * theta.cos(), r * theta.sin())
    }

    /// Standard normal variate via Box–Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        let (c, s) = self.gauss_pair();
        self.gauss_spare = Some(s);
        c
    }

    /// Fill `out` with standard normal variates.
    ///
    /// Produces exactly the sequence that `out.len()` calls to
    /// [`Self::gaussian`] would — same draws, same spare state afterwards —
    /// but writes each Box–Muller pair straight into two adjacent slots
    /// instead of round-tripping half of every pair through the spare
    /// cache. This is the form the per-rep noise loop uses.
    pub fn fill_gaussian(&mut self, out: &mut [f64]) {
        if out.is_empty() {
            return;
        }
        let mut i = 0;
        if let Some(z) = self.gauss_spare.take() {
            out[0] = z;
            i = 1;
        }
        while i + 1 < out.len() {
            let (c, s) = self.gauss_pair();
            out[i] = c;
            out[i + 1] = s;
            i += 2;
        }
        if i < out.len() {
            let (c, s) = self.gauss_pair();
            out[i] = c;
            self.gauss_spare = Some(s);
        }
    }

    /// Fill `out` with uniform variates in `[0, 1)`.
    pub fn fill_uniform(&mut self, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.uniform();
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.gaussian()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_are_stable_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = SimRng::stream(7, "frontier/osu", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = SimRng::stream(7, "frontier/osu", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::stream(7, "frontier/osu", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SimRng::from_seed(9);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SimRng::from_seed(1234);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut r = SimRng::from_seed(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::from_seed(1).below(0);
    }

    #[test]
    fn fill_gaussian_matches_sequential_draws() {
        // Any split of 9 draws across batches must reproduce the scalar
        // sequence, including the spare carried across batch boundaries.
        let seq: Vec<f64> = {
            let mut r = SimRng::from_seed(77);
            (0..9).map(|_| r.gaussian()).collect()
        };
        for split in 0..=9 {
            let mut r = SimRng::from_seed(77);
            let mut buf = vec![0.0; 9];
            r.fill_gaussian(&mut buf[..split]);
            r.fill_gaussian(&mut buf[split..]);
            assert_eq!(buf, seq, "split at {split}");
        }
    }

    #[test]
    fn fill_uniform_matches_sequential_draws() {
        let seq: Vec<f64> = {
            let mut r = SimRng::from_seed(11);
            (0..7).map(|_| r.uniform()).collect()
        };
        let mut r = SimRng::from_seed(11);
        let mut buf = vec![0.0; 7];
        r.fill_uniform(&mut buf);
        assert_eq!(buf, seq);
    }

    proptest! {
        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut r = SimRng::from_seed(seed);
            for _ in 0..32 {
                prop_assert!(r.below(n) < n);
            }
        }

        #[test]
        fn prop_uniform_range_bounds(seed in any::<u64>(), lo in -1e6f64..1e6, span in 1e-3f64..1e6) {
            let mut r = SimRng::from_seed(seed);
            let hi = lo + span;
            for _ in 0..32 {
                let x = r.uniform_range(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }
    }
}
