//! Picosecond-resolution virtual time.
//!
//! [`SimTime`] is a point on the virtual timeline; [`SimDuration`] is a span
//! between two points. Both wrap a `u64` count of picoseconds, which gives
//! ~213 days of range — far beyond any microbenchmark campaign — while
//! keeping arithmetic exact (no float drift in long accumulation loops).
//!
//! dessan::allow(unwrap-in-sim): overflow panics are the documented arithmetic contract;
//! returning Results would poison every timing expression in the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// A span of virtual time with picosecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from an exact picosecond count.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        SimDuration(round_nonneg(ns * PS_PER_NS as f64))
    }

    /// Construct from microseconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_us(us: f64) -> Self {
        SimDuration(round_nonneg(us * PS_PER_US as f64))
    }

    /// Construct from milliseconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        SimDuration(round_nonneg(ms * 1e9))
    }

    /// Construct from seconds (rounded to the nearest picosecond).
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        SimDuration(round_nonneg(s * PS_PER_SEC as f64))
    }

    /// The time to move `bytes` at `gib_per_s` **GB/s (decimal, 1e9 B/s)** —
    /// the unit used throughout the paper's tables.
    ///
    /// Returns [`SimDuration::ZERO`] for zero bytes and saturates for
    /// non-positive bandwidth (treated as "instantaneous link" misuse;
    /// callers validate their configs separately).
    #[inline]
    pub fn transfer(bytes: u64, gb_per_s: f64) -> Self {
        if bytes == 0 || gb_per_s <= 0.0 {
            return SimDuration::ZERO;
        }
        // bytes / (GB/s) = ns * (1/GB) => ps = bytes / gb_per_s * 1000
        SimDuration(round_nonneg(bytes as f64 / gb_per_s * 1_000.0))
    }

    /// Exact picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Duration in microseconds — the paper's latency unit.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Achieved bandwidth in GB/s (decimal) when `bytes` move in this time.
    ///
    /// Returns `f64::INFINITY` for a zero duration.
    #[inline]
    pub fn bandwidth_gb_s(self, bytes: u64) -> f64 {
        if self.0 == 0 {
            return f64::INFINITY;
        }
        bytes as f64 * 1_000.0 / self.0 as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division into `n` equal parts (floor).
    #[inline]
    pub fn div_exact(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n.max(1))
    }
}

#[inline]
fn round_nonneg(x: f64) -> u64 {
    if x <= 0.0 {
        0
    } else if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x.round() as u64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> Self {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        SimDuration(round_nonneg(self.0 as f64 * rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> Self {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < PS_PER_NS {
            write!(f, "{}ps", ps)
        } else if ps < PS_PER_US {
            write!(f, "{:.3}ns", self.as_ns())
        } else if ps < PS_PER_SEC / 1000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{:.6}s", self.as_secs())
        }
    }
}

/// A point on the virtual timeline (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a picosecond count since the epoch.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Picoseconds since the epoch.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Seconds since the epoch.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier is after self"),
        )
    }

    /// Elapsed duration since `earlier`, zero if `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.as_ps()).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_us(1.0).as_ps(), PS_PER_US);
        assert_eq!(SimDuration::from_ns(1.0).as_ps(), PS_PER_NS);
        assert_eq!(SimDuration::from_secs(1.0).as_ps(), PS_PER_SEC);
        assert_eq!(SimDuration::from_ms(1.0).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(2.5).as_us(), 2.5);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimDuration::from_us(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns(-0.001), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1 GB at 1 GB/s = 1 s
        let d = SimDuration::transfer(1_000_000_000, 1.0);
        assert_eq!(d.as_secs(), 1.0);
        // 128 B at 25 GB/s = 5.12 ns
        let d = SimDuration::transfer(128, 25.0);
        assert!((d.as_ns() - 5.12).abs() < 1e-9);
    }

    #[test]
    fn transfer_zero_cases() {
        assert_eq!(SimDuration::transfer(0, 10.0), SimDuration::ZERO);
        assert_eq!(SimDuration::transfer(100, 0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::transfer(100, -3.0), SimDuration::ZERO);
    }

    #[test]
    fn bandwidth_inverts_transfer() {
        let bytes = 1 << 30;
        let d = SimDuration::transfer(bytes, 900.0);
        let bw = d.bandwidth_gb_s(bytes);
        assert!((bw - 900.0).abs() / 900.0 < 1e-6, "bw={bw}");
    }

    #[test]
    fn bandwidth_of_zero_duration_is_infinite() {
        assert!(SimDuration::ZERO.bandwidth_gb_s(128).is_infinite());
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_ps(100);
        let b = SimDuration::from_ps(40);
        assert_eq!((a + b).as_ps(), 140);
        assert_eq!((a - b).as_ps(), 60);
        assert_eq!((a * 3).as_ps(), 300);
        assert_eq!((a / 4).as_ps(), 25);
        assert_eq!((a * 0.5).as_ps(), 50);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimDuration::from_ps(1) - SimDuration::from_ps(2);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_us(10.0);
        assert_eq!(t1.since(t0).as_us(), 10.0);
        assert_eq!((t1 - t0).as_us(), 10.0);
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn sum_folds() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ps).sum();
        assert_eq!(total.as_ps(), 10);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::ZERO), "0s");
        assert_eq!(format!("{}", SimDuration::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::from_ns(3.0)), "3.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(7.5)), "7.500us");
    }
}
