//! Measurement-noise models.
//!
//! Real microbenchmarks never return the same number twice: OS jitter,
//! DVFS, cache state, and NIC arbitration perturb every operation. The
//! paper's Tables 4–6 report a standard deviation over 100 executions of
//! each benchmark binary. [`Jitter`] reproduces that: each primitive cost
//! `c` is resampled as `c·(1+ε) + a`, with `ε ~ N(0, σ_rel)` and
//! `a ~ N(0, σ_abs)`, both truncated at ±4σ so a single unlucky draw cannot
//! produce a nonsensical (e.g. negative) cost.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Truncation point for noise draws, in standard deviations.
const TRUNC_SIGMA: f64 = 4.0;

/// A multiplicative + additive Gaussian jitter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jitter {
    /// Relative (multiplicative) standard deviation, e.g. `0.01` = 1 %.
    pub rel_sigma: f64,
    /// Additive standard deviation.
    pub abs_sigma: SimDuration,
}

impl Jitter {
    /// No noise at all — the model's deterministic backbone.
    pub const NONE: Jitter = Jitter {
        rel_sigma: 0.0,
        abs_sigma: SimDuration::ZERO,
    };

    /// Purely relative jitter.
    pub fn relative(rel_sigma: f64) -> Self {
        assert!((0.0..0.25).contains(&rel_sigma), "rel_sigma out of range");
        Jitter {
            rel_sigma,
            abs_sigma: SimDuration::ZERO,
        }
    }

    /// Relative plus additive jitter.
    pub fn new(rel_sigma: f64, abs_sigma: SimDuration) -> Self {
        assert!((0.0..0.25).contains(&rel_sigma), "rel_sigma out of range");
        Jitter {
            rel_sigma,
            abs_sigma,
        }
    }

    /// Sample a perturbed version of `cost`.
    ///
    /// The result is guaranteed non-negative; with the ±4σ truncation and
    /// `rel_sigma < 0.25` the multiplicative factor stays within (0, 2).
    pub fn sample(&self, cost: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.rel_sigma == 0.0 && self.abs_sigma.is_zero() {
            return cost;
        }
        let eps = truncated_gaussian(rng) * self.rel_sigma;
        let add = truncated_gaussian(rng) * self.abs_sigma.as_ps() as f64;
        let ps = cost.as_ps() as f64 * (1.0 + eps) + add;
        SimDuration::from_ps(if ps <= 0.0 { 0 } else { ps.round() as u64 })
    }

    /// Sample a perturbed scalar (e.g. a bandwidth in GB/s).
    pub fn sample_scalar(&self, value: f64, rng: &mut SimRng) -> f64 {
        if self.rel_sigma == 0.0 {
            return value;
        }
        let eps = truncated_gaussian(rng) * self.rel_sigma;
        (value * (1.0 + eps)).max(0.0)
    }

    /// Fill `out` with perturbed versions of `cost` — one independent draw
    /// per slot, identical to `out.len()` sequential [`Self::sample`]
    /// calls on the same generator.
    ///
    /// The batched form exists for the repetition loop: a campaign that
    /// needs 100 noisy instances of the same primitive cost pulls them all
    /// in one call against a caller-reused buffer instead of allocating or
    /// branching per rep.
    pub fn sample_into(&self, cost: SimDuration, rng: &mut SimRng, out: &mut [SimDuration]) {
        if self.rel_sigma == 0.0 && self.abs_sigma.is_zero() {
            out.fill(cost);
            return;
        }
        let cost_ps = cost.as_ps() as f64;
        let abs_ps = self.abs_sigma.as_ps() as f64;
        for slot in out.iter_mut() {
            let eps = truncated_gaussian(rng) * self.rel_sigma;
            let add = truncated_gaussian(rng) * abs_ps;
            let ps = cost_ps * (1.0 + eps) + add;
            *slot = SimDuration::from_ps(if ps <= 0.0 { 0 } else { ps.round() as u64 });
        }
    }

    /// Fill `out` with perturbed versions of `value` — the scalar analogue
    /// of [`Self::sample_into`], identical to sequential
    /// [`Self::sample_scalar`] calls.
    pub fn sample_scalar_into(&self, value: f64, rng: &mut SimRng, out: &mut [f64]) {
        if self.rel_sigma == 0.0 {
            out.fill(value);
            return;
        }
        for slot in out.iter_mut() {
            let eps = truncated_gaussian(rng) * self.rel_sigma;
            *slot = (value * (1.0 + eps)).max(0.0);
        }
    }
}

fn truncated_gaussian(rng: &mut SimRng) -> f64 {
    loop {
        let z = rng.gaussian();
        if z.abs() <= TRUNC_SIGMA {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_is_identity() {
        let mut rng = SimRng::from_seed(1);
        let c = SimDuration::from_us(3.0);
        assert_eq!(Jitter::NONE.sample(c, &mut rng), c);
    }

    #[test]
    fn sample_mean_tracks_cost() {
        let j = Jitter::relative(0.05);
        let mut rng = SimRng::from_seed(2);
        let c = SimDuration::from_us(10.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| j.sample(c, &mut rng).as_us()).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn sample_sigma_tracks_rel_sigma() {
        let j = Jitter::relative(0.02);
        let mut rng = SimRng::from_seed(3);
        let c = SimDuration::from_us(100.0);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| j.sample(c, &mut rng).as_us()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let sd = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        let rel = sd / mean;
        assert!((rel - 0.02).abs() < 0.003, "rel sd={rel}");
    }

    #[test]
    fn additive_noise_applies_to_zero_cost() {
        let j = Jitter::new(0.0, SimDuration::from_ns(10.0));
        let mut rng = SimRng::from_seed(4);
        let samples: Vec<u64> = (0..100)
            .map(|_| j.sample(SimDuration::ZERO, &mut rng).as_ps())
            .collect();
        assert!(samples.iter().any(|&s| s > 0));
    }

    #[test]
    #[should_panic(expected = "rel_sigma out of range")]
    fn oversized_rel_sigma_rejected() {
        let _ = Jitter::relative(0.5);
    }

    #[test]
    fn sample_into_matches_sequential_sampling() {
        let j = Jitter::new(0.03, SimDuration::from_ns(5.0));
        let c = SimDuration::from_us(7.0);
        let seq: Vec<SimDuration> = {
            let mut rng = SimRng::from_seed(21);
            (0..64).map(|_| j.sample(c, &mut rng)).collect()
        };
        let mut rng = SimRng::from_seed(21);
        let mut buf = vec![SimDuration::ZERO; 64];
        j.sample_into(c, &mut rng, &mut buf);
        assert_eq!(buf, seq);
    }

    #[test]
    fn sample_scalar_into_matches_sequential_sampling() {
        let j = Jitter::relative(0.05);
        let seq: Vec<f64> = {
            let mut rng = SimRng::from_seed(22);
            (0..64).map(|_| j.sample_scalar(200.0, &mut rng)).collect()
        };
        let mut rng = SimRng::from_seed(22);
        let mut buf = vec![0.0; 64];
        j.sample_scalar_into(200.0, &mut rng, &mut buf);
        assert_eq!(buf, seq);
    }

    #[test]
    fn sample_into_with_no_noise_fills_cost() {
        let mut rng = SimRng::from_seed(23);
        let c = SimDuration::from_us(1.5);
        let mut buf = vec![SimDuration::ZERO; 8];
        Jitter::NONE.sample_into(c, &mut rng, &mut buf);
        assert!(buf.iter().all(|&d| d == c));
    }

    proptest! {
        #[test]
        fn prop_samples_never_negative_and_bounded(
            seed in any::<u64>(),
            us in 0.0f64..1e4,
            rel in 0.0f64..0.2,
        ) {
            let j = Jitter::relative(rel);
            let mut rng = SimRng::from_seed(seed);
            let c = SimDuration::from_us(us);
            for _ in 0..16 {
                let s = j.sample(c, &mut rng);
                // With ±4σ truncation the factor is within [1-4·rel, 1+4·rel].
                let hi = c.as_ps() as f64 * (1.0 + 4.0 * rel) + 2.0;
                prop_assert!((s.as_ps() as f64) <= hi);
            }
        }

        #[test]
        fn prop_scalar_sampling_nonnegative(seed in any::<u64>(), v in 0.0f64..1e5, rel in 0.0f64..0.2) {
            let j = Jitter::relative(rel);
            let mut rng = SimRng::from_seed(seed);
            for _ in 0..16 {
                prop_assert!(j.sample_scalar(v, &mut rng) >= 0.0);
            }
        }
    }
}
