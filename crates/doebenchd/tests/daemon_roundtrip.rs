//! End-to-end daemon tests: real sockets, real threads, one process.
//!
//! The coalescing assertion is interleaving-proof: across N concurrent
//! identical queries, the *sum* of executed cells must equal the plan's
//! cell count — every cell computed exactly once, no matter how the
//! threads raced — and every body must be byte-identical.

use std::thread;

use doebenchd::client;
use doebenchd::Server;

fn start() -> (Server, String) {
    let server = Server::start(0).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    (server, addr)
}

fn meta_count(resp: &client::ClientResponse, name: &str) -> usize {
    resp.header(name)
        .unwrap_or_else(|| panic!("missing header {name}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric header {name}"))
}

#[test]
fn health_stats_and_index() {
    let (mut server, addr) = start();
    let health = client::request(&addr, "GET", "/healthz", &[]).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    let index = client::request(&addr, "GET", "/", &[]).unwrap();
    assert!(index.text().contains("/query"));

    let stats = client::request(&addr, "GET", "/stats", &[]).unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.text().contains("\"executed\""));
    // Sharded-DES window counters ride along (diagnostics only; query
    // bodies stay shard-free).
    assert!(stats.text().contains("\"shards\""));
    assert!(stats.text().contains("\"windows\""));
    assert!(stats.text().contains("\"cross_events\""));
    assert!(stats.text().contains("\"merge_batches\""));

    let missing = client::request(&addr, "GET", "/nope", &[]).unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client::request(&addr, "POST", "/healthz", &[]).unwrap();
    assert_eq!(wrong_method.status, 405);
    server.stop();
}

#[test]
fn bad_queries_are_400() {
    let (mut server, addr) = start();
    let r = client::query_shorthand(&addr, "table9", "ascii").unwrap();
    assert_eq!(r.status, 400);
    let r = client::query_shorthand(&addr, "table4", "pdf").unwrap();
    assert_eq!(r.status, 400);
    let r = client::request(&addr, "GET", "/query", &[]).unwrap();
    assert_eq!(r.status, 400);
    let r = client::query_json(&addr, "{\"kind\":\"suite\",", "ascii").unwrap();
    assert_eq!(r.status, 400);
    let r = client::query_shorthand(&addr, "table4 NoSuchMachine", "ascii").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("unknown machine"));
    server.stop();
}

#[test]
fn concurrent_identical_queries_execute_once() {
    let (mut server, addr) = start();
    const N: usize = 6;
    let handles: Vec<_> = (0..N)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || client::query_shorthand(&addr, "table4", "ascii").unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for r in &responses {
        assert_eq!(r.status, 200);
    }
    // Every response saw the same cell universe...
    let cells = meta_count(&responses[0], "x-doebench-cells-cached")
        + meta_count(&responses[0], "x-doebench-cells-executed")
        + meta_count(&responses[0], "x-doebench-cells-coalesced");
    assert!(cells > 0);
    // ...and each cell ran exactly once across ALL requests combined.
    let total_executed: usize = responses
        .iter()
        .map(|r| meta_count(r, "x-doebench-cells-executed"))
        .sum();
    assert_eq!(total_executed, cells, "each cell computes exactly once");

    // Bodies are byte-identical regardless of who computed what.
    for r in &responses[1..] {
        assert_eq!(r.body, responses[0].body);
        assert_eq!(
            r.header("x-doebench-key"),
            responses[0].header("x-doebench-key")
        );
    }

    // A later identical query is a pure cache hit, still byte-identical.
    let warm = client::query_shorthand(&addr, "table4", "ascii").unwrap();
    assert_eq!(warm.header("x-doebench-cache"), Some("hit"));
    assert_eq!(meta_count(&warm, "x-doebench-cells-executed"), 0);
    assert_eq!(warm.body, responses[0].body);
    server.stop();
}

#[test]
fn json_post_equals_shorthand_get() {
    let (mut server, addr) = start();
    let get = client::query_shorthand(&addr, "table4 Eagle", "json").unwrap();
    assert_eq!(get.status, 200);
    let post = client::query_json(
        &addr,
        r#"{"kind":"table","table":"table4","machines":["Eagle"]}"#,
        "json",
    )
    .unwrap();
    assert_eq!(post.status, 200);
    assert_eq!(get.body, post.body, "same query, same bytes");
    assert_eq!(post.header("x-doebench-cache"), Some("hit"));
    server.stop();
}

#[test]
fn override_recomputes_only_dependent_cells() {
    let (mut server, addr) = start();
    let cold = client::query_shorthand(&addr, "table4", "ascii").unwrap();
    let cells = meta_count(&cold, "x-doebench-cells-executed");
    assert!(cells >= 2);

    let tweaked =
        client::query_shorthand(&addr, "table4 set Eagle.host_peak_bw_gb_s=500", "ascii").unwrap();
    assert_eq!(tweaked.status, 200);
    assert_eq!(meta_count(&tweaked, "x-doebench-cells-executed"), 1);
    assert_eq!(meta_count(&tweaked, "x-doebench-cells-cached"), cells - 1);
    assert_eq!(tweaked.header("x-doebench-cache"), Some("partial"));
    assert_ne!(tweaked.body, cold.body, "override must change the numbers");
    server.stop();
}

#[test]
fn table_shortcut_and_sweep() {
    let (mut server, addr) = start();
    let t4 = client::request(&addr, "GET", "/table/4?format=md", &[]).unwrap();
    assert_eq!(t4.status, 200);
    assert!(t4.text().contains("| Rank/Name"));
    let bad = client::request(&addr, "GET", "/table/9", &[]).unwrap();
    assert_eq!(bad.status, 404);

    let sweep = client::query_shorthand(&addr, "sweep Eagle Theta", "csv").unwrap();
    assert_eq!(sweep.status, 200);
    assert!(sweep.text().contains("Eagle On-Socket"));
    server.stop();
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let (mut server, addr) = start();
    let r = client::request(&addr, "POST", "/shutdown", &[]).unwrap();
    assert_eq!(r.status, 200);
    // join() returns only once the accept loop has exited.
    server.join();
    // Further connections now fail (or are refused mid-handshake).
    assert!(client::request(&addr, "GET", "/healthz", &[]).is_err());
}
