//! `doebenchd` — the benchmark-query daemon.
//!
//! A long-lived process answering campaign queries ("Table 4 for
//! Frontier", "latency sweep, machine X vs Y", "full suite with a
//! custom machine parameter") over hand-rolled HTTP/1.1, backed by a
//! content-addressed result cache.
//!
//! The architectural bet is the suite's determinism theorem (PR 1–7):
//! every cell value is a pure function of (machine spec, campaign
//! config, seed, code version), so results never expire — the cache
//! needs no TTLs, no clocks, and no invalidation protocol beyond the
//! content hash itself. See `DESIGN.md` §14.
//!
//! * [`cache`] — sharded single-flight cache (waiter/ready state machine)
//! * [`service`] — plan → acquire → batched fan-out → assemble
//! * [`http`] — minimal HTTP/1.1 request/response framing
//! * [`server`] — routes, thread-per-connection loop, graceful stop
//! * [`client`] — tiny blocking client (CLI `query`, tests, CI smoke)

pub mod cache;
pub mod client;
pub mod http;
pub mod server;
pub mod service;

pub use server::{Server, DEFAULT_PORT};
pub use service::{QueryService, ServeMeta};
