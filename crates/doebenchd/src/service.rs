//! The query service: plan → acquire cells → batch-execute the cold
//! ones → assemble.
//!
//! One query's cold cells go to the worker pool as a **single**
//! `sched::run_cells` fan-out, not one dispatch per cell — so a cold
//! Table 5 query schedules its whole (machine × benchmark) grid at
//! once, exactly like the offline path, and cache-hit cells cost no
//! scheduling at all. Cells owned by *another* in-flight query are
//! waited on after this query's own batch completes, so two
//! overlapping queries never compute a shared cell twice.

use std::sync::Arc;

use doebench::query::{self, Query, QueryError, QueryResult, RowValue};
use doebench::sched;

use crate::cache::{Acquire, Cache, Key};

/// How each cell of an answer was obtained (sums to the cell count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeMeta {
    /// Cells answered from the ready cache.
    pub cached: usize,
    /// Cells this query computed (it owned the flight).
    pub executed: usize,
    /// Cells coalesced onto another query's in-flight computation.
    pub coalesced: usize,
}

impl ServeMeta {
    /// `"hit"` when nothing ran, `"miss"` when everything ran, else
    /// `"partial"` — the `X-Doebench-Cache` header value.
    pub fn verdict(&self) -> &'static str {
        if self.executed == 0 && self.coalesced == 0 {
            "hit"
        } else if self.cached == 0 && self.coalesced == 0 {
            "miss"
        } else {
            "partial"
        }
    }
}

/// The daemon's shared state: one process-wide cell cache.
pub struct QueryService {
    cache: Cache<Arc<RowValue>>,
}

impl QueryService {
    /// A service with an empty cache.
    pub fn new() -> QueryService {
        QueryService {
            cache: Cache::new(),
        }
    }

    /// The underlying cache (stats endpoint, tests).
    pub fn cache(&self) -> &Cache<Arc<RowValue>> {
        &self.cache
    }

    /// Answer a query, reporting how many cells were cached, executed,
    /// and coalesced. The body assembled here is byte-identical to an
    /// offline `query::run_query` answer: cell values are pure content,
    /// and serving metadata never touches the payload.
    pub fn answer(&self, q: &Query) -> Result<(QueryResult, ServeMeta), QueryError> {
        let plan = query::plan(q)?;
        let n = plan.cells().len();
        let mut meta = ServeMeta::default();
        let mut values: Vec<Option<Arc<RowValue>>> = vec![None; n];

        // Classify every cell in one pass: hits resolve immediately,
        // cold cells are claimed (becoming this query's batch), and
        // cells already in flight elsewhere are parked for later.
        let mut owned: Vec<(usize, crate::cache::OwnerToken<Arc<RowValue>>)> = Vec::new();
        let mut waiting: Vec<(usize, Key)> = Vec::new();
        for (i, cell) in plan.cells().iter().enumerate() {
            let key = Key::new(&cell.key.canon);
            match self.cache.acquire(&key) {
                Acquire::Hit(v) => {
                    meta.cached += 1;
                    values[i] = Some(v);
                }
                Acquire::Owner(token) => {
                    meta.executed += 1;
                    owned.push((i, token));
                }
                Acquire::Waiter(_) => {
                    // Park the key, not the flight: if the owner aborts
                    // we must re-acquire from scratch anyway.
                    meta.coalesced += 1;
                    waiting.push((i, key));
                }
            }
        }

        // One fan-out for the whole cold batch. `run_cells` preserves
        // index order, so results zip back onto their owner tokens.
        let indices: Vec<usize> = owned.iter().map(|&(i, _)| i).collect();
        let computed = sched::run_cells(&indices, |&i| Arc::new(plan.compute(i)));
        for ((i, token), v) in owned.into_iter().zip(computed) {
            token.publish(Arc::clone(&v));
            values[i] = Some(v);
        }

        // Collect cells other queries were computing. An aborted owner
        // (panicked request) degrades to computing the cell here.
        for (i, key) in waiting {
            let v = self
                .cache
                .get_or_compute(&key, || Arc::new(plan.compute(i)));
            values[i] = Some(v);
        }

        let values: Vec<Arc<RowValue>> = values
            .into_iter()
            .map(|v| v.expect("every cell resolved"))
            .collect();
        Ok((plan.assemble(&values)?, meta))
    }
}

impl Default for QueryService {
    fn default() -> Self {
        QueryService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_report::Format;
    use doebench::query::{MachineSel, OverrideField, QueryParams, SpecOverride, TableId};

    fn table4_all() -> Query {
        Query::Table {
            id: TableId::Table4,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        }
    }

    #[test]
    fn second_answer_is_pure_hit_and_byte_identical() {
        let svc = QueryService::new();
        let (r1, m1) = svc.answer(&table4_all()).unwrap();
        assert_eq!(m1.cached, 0);
        assert_eq!(m1.verdict(), "miss");
        assert!(m1.executed > 0);
        let (r2, m2) = svc.answer(&table4_all()).unwrap();
        assert_eq!(m2.executed, 0);
        assert_eq!(m2.coalesced, 0);
        assert_eq!(m2.verdict(), "hit");
        assert_eq!(m2.cached, m1.executed);
        for f in [Format::Ascii, Format::Markdown, Format::Csv, Format::Json] {
            assert_eq!(r1.body(f), r2.body(f), "bodies must match for {f:?}");
        }
    }

    #[test]
    fn daemon_body_matches_offline_run() {
        let svc = QueryService::new();
        let q = table4_all();
        let (served, _) = svc.answer(&q).unwrap();
        let offline = query::run_query(&q).unwrap();
        assert_eq!(served.body(Format::Ascii), offline.body(Format::Ascii));
        assert_eq!(served.body(Format::Json), offline.body(Format::Json));
    }

    #[test]
    fn override_invalidates_only_the_touched_machine() {
        let svc = QueryService::new();
        let q = Query::Table {
            id: TableId::Table4,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let (_, cold) = svc.answer(&q).unwrap();
        let cells = cold.executed;
        assert!(cells >= 2, "need several machines to see precision");
        let tweaked = Query::Table {
            id: TableId::Table4,
            machines: MachineSel::All,
            params: QueryParams {
                overrides: vec![SpecOverride {
                    machine: "Eagle".into(),
                    field: OverrideField::MpiShmLatencyUs,
                    value: 0.3,
                }],
                ..QueryParams::quick()
            },
        };
        let (_, m) = svc.answer(&tweaked).unwrap();
        assert_eq!(m.executed, 1, "only Eagle's cell recomputes");
        assert_eq!(m.cached, cells - 1, "every other machine served from cache");
        assert_eq!(m.verdict(), "partial");
    }

    #[test]
    fn table7_reuses_table5_and_6_cells() {
        let svc = QueryService::new();
        let q5 = Query::Table {
            id: TableId::Table5,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let q6 = Query::Table {
            id: TableId::Table6,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let q7 = Query::Table {
            id: TableId::Table7,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        svc.answer(&q5).unwrap();
        svc.answer(&q6).unwrap();
        let (r7, m7) = svc.answer(&q7).unwrap();
        assert_eq!(m7.executed, 0, "table7 is fully derived from cached cells");
        assert_eq!(m7.verdict(), "hit");
        assert_eq!(r7.tables.len(), 1);
        assert!(!r7.tables[0].rows.is_empty());
    }
}
