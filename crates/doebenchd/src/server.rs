//! The daemon: a thread-per-connection HTTP server over
//! [`QueryService`].
//!
//! Routes:
//!
//! | Method | Path        | Meaning                                      |
//! |--------|-------------|----------------------------------------------|
//! | GET    | `/`         | route index                                  |
//! | GET    | `/healthz`  | liveness probe (`ok`)                        |
//! | GET    | `/stats`    | cache + request counters (JSON)              |
//! | GET    | `/query`    | `?q=<shorthand>&format=ascii|md|csv|json`    |
//! | POST   | `/query`    | body = canonical JSON query (or shorthand)   |
//! | GET    | `/table/N`  | shortcut for `?q=tableN` (N in 4..=7)        |
//! | POST   | `/shutdown` | graceful stop                                |
//!
//! Serving metadata travels in `X-Doebench-*` response headers, never
//! in the body: a cache-hit body is byte-identical to the cold body,
//! which is byte-identical to the offline CLI output. The daemon holds
//! no wall clock — nothing in this crate can observe time, so nothing
//! can leak it into a cached payload.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use doe_report::json::Json;
use doe_report::Format;
use doebench::query::{Query, QueryError, CODE_VERSION};

use crate::http::{read_request, Request, Response};
use crate::service::{QueryService, ServeMeta};

/// The default TCP port.
pub const DEFAULT_PORT: u16 = 7733;

struct ServerState {
    service: QueryService,
    stop: AtomicBool,
    queries: AtomicU64,
    addr: std::net::SocketAddr,
}

/// A running daemon bound to a local address.
pub struct Server {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving on `127.0.0.1:port` (`port = 0` picks an
    /// ephemeral port; read it back from [`Server::addr`]).
    pub fn start(port: u16) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            service: QueryService::new(),
            stop: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            addr,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = thread::Builder::new()
            .name("doebenchd-accept".into())
            .spawn(move || accept_loop(listener, accept_state))
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            state,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Request a stop and wait for the accept loop to exit. Idempotent.
    pub fn stop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }

    /// Block until the server stops (foreground `doebench serve`).
    pub fn join(&mut self) {
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        let _ = thread::Builder::new()
            .name("doebenchd-conn".into())
            .spawn(move || handle_connection(stream, state));
    }
}

fn handle_connection(mut stream: TcpStream, state: Arc<ServerState>) {
    let (response, shutdown) = match read_request(&mut stream) {
        Ok(req) => {
            let shutdown = req.method == "POST" && req.path == "/shutdown";
            (route(&req, &state), shutdown)
        }
        Err(e) => (Response::text(400, format!("bad request: {e}\n")), false),
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    if shutdown {
        // Only now that the reply is on the wire: stop the accept loop
        // (a throwaway self-connection makes the blocking accept()
        // re-check the flag). Doing this before the write would let the
        // process exit and cut the reply short.
        state.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(state.addr);
    }
}

const INDEX: &str = "\
doebenchd: DOE Top500 microbenchmark query daemon

  GET  /healthz                   liveness
  GET  /stats                     cache counters (JSON)
  GET  /query?q=<shorthand>       e.g. q=table4, q=table5@paper+Frontier
  POST /query                     body = JSON query
  GET  /table/4 .. /table/7       table shortcuts
  POST /shutdown                  graceful stop

Formats: &format=ascii|md|csv|json (default ascii).
Serving metadata is in X-Doebench-* response headers; bodies are
byte-identical whether served cold or from cache.
";

fn route(req: &Request, state: &Arc<ServerState>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => Response::text(200, INDEX),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/stats") => stats(state),
        // The stop flag is set in `handle_connection` after this reply
        // has been written, so the client always sees the 200.
        ("POST", "/shutdown") => Response::text(200, "shutting down\n"),
        ("GET", "/query") => match req.param("q") {
            Some(q) => answer_shorthand(&q, req, state),
            None => Response::text(400, "missing ?q=<shorthand query>\n"),
        },
        ("POST", "/query") => {
            let body = String::from_utf8_lossy(&req.body);
            let text = body.trim();
            let parsed = if text.starts_with('{') {
                Query::parse(text)
            } else {
                Query::parse_shorthand(text)
            };
            match parsed {
                Ok(q) => answer(&q, req, state),
                Err(e) => Response::text(400, format!("bad query: {e}\n")),
            }
        }
        ("GET", path) if path.starts_with("/table/") => {
            let n = &path["/table/".len()..];
            match n {
                "4" | "5" | "6" | "7" => answer_shorthand(&format!("table{n}"), req, state),
                _ => Response::text(404, "no such table (try /table/4 .. /table/7)\n"),
            }
        }
        (_, "/query") | (_, "/shutdown") | (_, "/healthz") | (_, "/stats") => {
            Response::text(405, "method not allowed\n")
        }
        _ => Response::text(404, "not found\n"),
    }
}

fn stats(state: &Arc<ServerState>) -> Response {
    let s = &state.service.cache().stats;
    // Process-wide sharded-DES counters: how many lock-step windows the
    // conservative engine executed, cross-shard events it merged, and
    // same-timestamp batches it drained since startup. Diagnostics only —
    // query response *bodies* never carry shard metadata, so they stay
    // byte-identical whatever DOEBENCH_SHARDS selects.
    let (windows, cross_events, merge_batches) = doebench::simtime::shard::global_shard_counters();
    let body = Json::obj([
        ("code_version", Json::s(CODE_VERSION)),
        (
            "queries",
            Json::Num(state.queries.load(Ordering::Relaxed) as f64),
        ),
        ("entries", Json::Num(state.service.cache().len() as f64)),
        (
            "cells",
            Json::obj([
                ("hits", Json::Num(s.hits.load(Ordering::Relaxed) as f64)),
                (
                    "executed",
                    Json::Num(s.executed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "coalesced",
                    Json::Num(s.coalesced.load(Ordering::Relaxed) as f64),
                ),
            ]),
        ),
        (
            "shards",
            Json::obj([
                ("windows", Json::Num(windows as f64)),
                ("cross_events", Json::Num(cross_events as f64)),
                ("merge_batches", Json::Num(merge_batches as f64)),
            ]),
        ),
    ]);
    Response::json(200, body.canonical() + "\n")
}

fn answer_shorthand(q: &str, req: &Request, state: &Arc<ServerState>) -> Response {
    match Query::parse_shorthand(q) {
        Ok(query) => answer(&query, req, state),
        Err(e) => Response::text(400, format!("bad query: {e}\n")),
    }
}

fn parse_format(req: &Request) -> Result<Format, QueryError> {
    match req.param("format") {
        None => Ok(Format::Ascii),
        Some(f) => Format::parse(&f).ok_or_else(|| QueryError(format!("unknown format '{f}'"))),
    }
}

fn answer(q: &Query, req: &Request, state: &Arc<ServerState>) -> Response {
    let format = match parse_format(req) {
        Ok(f) => f,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    state.queries.fetch_add(1, Ordering::Relaxed);
    match state.service.answer(q) {
        Ok((result, meta)) => {
            let body = result.body(format);
            let resp = if format == Format::Json {
                Response::json(200, body)
            } else {
                Response::text(200, body)
            };
            attach_meta(resp, &result.key, &meta)
        }
        Err(e) => Response::text(400, format!("query failed: {e}\n")),
    }
}

fn attach_meta(resp: Response, key: &str, meta: &ServeMeta) -> Response {
    resp.header("X-Doebench-Cache", meta.verdict())
        .header("X-Doebench-Cells-Cached", meta.cached.to_string())
        .header("X-Doebench-Cells-Executed", meta.executed.to_string())
        .header("X-Doebench-Cells-Coalesced", meta.coalesced.to_string())
        .header("X-Doebench-Key", key)
        .header("X-Doebench-Code-Version", CODE_VERSION)
}
