//! The sharded content-addressed result cache with single-flight
//! coalescing.
//!
//! Every cell key is a content hash over (code version, machine-spec
//! digest, campaign digest) — see `doebench::query` — and cell values
//! are pure functions of exactly those inputs, so an entry, once
//! computed, is valid forever. The cache therefore has no TTLs and no
//! wall-clock anywhere (the dessan taint rule bans time sources from
//! this crate); the only invalidation is *precise* invalidation, which
//! happens for free: changing a machine parameter changes that
//! machine's spec digest, which changes only the keys of cells that
//! depend on it, so the stale entries are simply never addressed again.
//!
//! Concurrency is single-flight: the first thread to miss on a key
//! becomes its **owner** and computes the value; threads that arrive
//! while the computation is in flight become **waiters** on the same
//! [`Flight`] and block on its condvar rather than duplicating work.
//! The state machine per slot:
//!
//! ```text
//!              lookup miss                 publish(value)
//!   (absent) ──────────────▶ InFlight ────────────────────▶ Ready
//!                              │  ▲                           │
//!                   owner drops│  │ next lookup re-owns       │ lookup hit
//!                  w/o publish ▼  │                           ▼
//!                            (absent)                   value cloned out
//! ```
//!
//! Owner panics are survivable: [`OwnerToken`]'s `Drop` aborts the
//! flight if it was never published, waking waiters with `None` so they
//! can re-acquire (and one of them becomes the new owner).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independently locked shards. Shard choice hashes the key,
/// so unrelated cells never contend on one mutex.
const SHARDS: usize = 16;

/// A cache key: the full canonical string plus its FNV hash. Equality
/// is on the string (the hash is a router, not an identity — two keys
/// that collide in 64 bits still occupy distinct entries).
#[derive(Clone, Debug)]
pub struct Key {
    /// Canonical key text (`cell/v=…/t=…/m=…/spec=…/camp=…`).
    pub canon: Arc<str>,
    /// FNV-1a of `canon`; selects the shard.
    pub hash: u64,
}

impl Key {
    /// Build from a canonical string, hashing it for shard routing.
    pub fn new(canon: &str) -> Key {
        Key {
            canon: Arc::from(canon),
            hash: doebench::query::fnv1a64(canon.as_bytes()),
        }
    }
}

/// The in-flight rendezvous for one key (opaque: waiters hand it back
/// to [`Cache::wait`]).
pub struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

enum FlightState<V> {
    Pending,
    /// Owner finished: `Some` published a value, `None` aborted.
    Finished(Option<V>),
}

/// One slot of a shard map.
enum Slot<V> {
    Ready(V),
    InFlight(Arc<Flight<V>>),
}

/// What [`Cache::acquire`] hands back.
pub enum Acquire<V> {
    /// The value was cached; cloned out under the shard lock.
    Hit(V),
    /// This thread owns the computation; it must call
    /// [`OwnerToken::publish`] (drop aborts and wakes waiters).
    Owner(OwnerToken<V>),
    /// Another thread owns an identical in-flight computation.
    Waiter(Arc<Flight<V>>),
}

/// Proof of computation ownership for one key.
pub struct OwnerToken<V> {
    cache: Arc<CacheInner<V>>,
    key: Key,
    flight: Arc<Flight<V>>,
    published: bool,
}

impl<V: Clone> OwnerToken<V> {
    /// Install the computed value and wake all waiters.
    pub fn publish(mut self, value: V) {
        self.published = true;
        self.cache.install(&self.key, value.clone());
        let mut st = self.flight.state.lock().unwrap();
        *st = FlightState::Finished(Some(value));
        drop(st);
        self.flight.done.notify_all();
    }
}

impl<V> Drop for OwnerToken<V> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // Owner died without publishing (panic in the benchmark code):
        // clear the slot so a later lookup re-owns it, and wake waiters
        // with an abort so they retry instead of blocking forever.
        self.cache.evict_inflight(&self.key, &self.flight);
        let mut st = self.flight.state.lock().unwrap();
        *st = FlightState::Finished(None);
        drop(st);
        self.flight.done.notify_all();
    }
}

/// Monotonic cache statistics (exported on `/stats` and echoed in
/// response headers).
#[derive(Default)]
pub struct Stats {
    /// Cells answered from the cache.
    pub hits: AtomicU64,
    /// Cells computed by an owner.
    pub executed: AtomicU64,
    /// Cells answered by waiting on another request's computation.
    pub coalesced: AtomicU64,
}

struct CacheInner<V> {
    shards: Vec<Mutex<HashMap<Arc<str>, Slot<V>>>>,
}

impl<V> CacheInner<V> {
    fn shard(&self, key: &Key) -> &Mutex<HashMap<Arc<str>, Slot<V>>> {
        &self.shards[(key.hash % SHARDS as u64) as usize]
    }

    fn install(&self, key: &Key, value: V) {
        let mut map = self.shard(key).lock().unwrap();
        map.insert(Arc::clone(&key.canon), Slot::Ready(value));
    }

    fn evict_inflight(&self, key: &Key, flight: &Arc<Flight<V>>) {
        let mut map = self.shard(key).lock().unwrap();
        if let Some(Slot::InFlight(f)) = map.get(&key.canon) {
            if Arc::ptr_eq(f, flight) {
                map.remove(&key.canon);
            }
        }
    }
}

/// The sharded single-flight cache.
pub struct Cache<V> {
    inner: Arc<CacheInner<V>>,
    /// Hit/executed/coalesced counters.
    pub stats: Stats,
}

impl<V: Clone> Cache<V> {
    /// An empty cache.
    pub fn new() -> Cache<V> {
        Cache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            }),
            stats: Stats::default(),
        }
    }

    /// Look up a key, claiming ownership of the computation on a cold
    /// miss. Does not block; waiters block later, in [`Cache::wait`].
    // doebench::effects(no-block)
    pub fn acquire(&self, key: &Key) -> Acquire<V> {
        let mut map = self.inner.shard(key).lock().unwrap();
        match map.get(&key.canon) {
            Some(Slot::Ready(v)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Acquire::Hit(v.clone())
            }
            Some(Slot::InFlight(f)) => {
                self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                Acquire::Waiter(Arc::clone(f))
            }
            None => {
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState::Pending),
                    done: Condvar::new(),
                });
                map.insert(Arc::clone(&key.canon), Slot::InFlight(Arc::clone(&flight)));
                self.stats.executed.fetch_add(1, Ordering::Relaxed);
                Acquire::Owner(OwnerToken {
                    cache: Arc::clone(&self.inner),
                    key: key.clone(),
                    flight,
                    published: false,
                })
            }
        }
    }

    /// Block until a flight finishes. Returns the published value, or
    /// `None` if the owner aborted (caller should re-`acquire`).
    pub fn wait(&self, flight: &Arc<Flight<V>>) -> Option<V> {
        let mut st = flight.state.lock().unwrap();
        loop {
            match &*st {
                FlightState::Finished(v) => return v.clone(),
                FlightState::Pending => st = flight.done.wait(st).unwrap(),
            }
        }
    }

    /// Fetch-or-compute with single-flight semantics: the convenience
    /// wrapper for one key (the service layer drives `acquire` directly
    /// when it wants to batch multiple cold cells into one fan-out).
    pub fn get_or_compute(&self, key: &Key, compute: impl FnOnce() -> V) -> V {
        loop {
            match self.acquire(key) {
                Acquire::Hit(v) => return v,
                Acquire::Owner(token) => {
                    let v = compute();
                    token.publish(v.clone());
                    return v;
                }
                Acquire::Waiter(flight) => {
                    if let Some(v) = self.wait(&flight) {
                        return v;
                    }
                    // Owner aborted; retry (this thread may become the
                    // new owner).
                }
            }
        }
    }

    /// Number of ready entries (for `/stats`).
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when no entries are ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (whole shards at a time; entries are
    /// content-addressed so there is no partial-eviction policy to
    /// preserve, and clearing avoids any hash-order-dependent walk).
    pub fn clear(&self) {
        for s in &self.inner.shards {
            s.lock().unwrap().clear();
        }
    }
}

impl<V: Clone> Default for Cache<V> {
    fn default() -> Self {
        Cache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn hit_after_publish() {
        let cache: Cache<u32> = Cache::new();
        let key = Key::new("cell/a");
        match cache.acquire(&key) {
            Acquire::Owner(t) => t.publish(7),
            _ => panic!("first acquire must own"),
        }
        match cache.acquire(&key) {
            Acquire::Hit(v) => assert_eq!(v, 7),
            _ => panic!("second acquire must hit"),
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats.executed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn waiter_blocks_until_owner_publishes() {
        let cache: Arc<Cache<u32>> = Arc::new(Cache::new());
        let key = Key::new("cell/b");
        let token = match cache.acquire(&key) {
            Acquire::Owner(t) => t,
            _ => panic!("must own"),
        };
        let flight = match cache.acquire(&key) {
            Acquire::Waiter(f) => f,
            _ => panic!("second concurrent acquire must wait"),
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.wait(&flight))
        };
        token.publish(42);
        assert_eq!(waiter.join().unwrap(), Some(42));
        assert_eq!(cache.stats.coalesced.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn aborted_owner_wakes_waiters_and_clears_slot() {
        let cache: Cache<u32> = Cache::new();
        let key = Key::new("cell/c");
        let token = match cache.acquire(&key) {
            Acquire::Owner(t) => t,
            _ => panic!("must own"),
        };
        let flight = match cache.acquire(&key) {
            Acquire::Waiter(f) => f,
            _ => panic!("must wait"),
        };
        drop(token); // abort without publishing
        assert_eq!(cache.wait(&flight), None);
        // Slot is clear: the next acquire owns again.
        assert!(matches!(cache.acquire(&key), Acquire::Owner(_)));
    }

    #[test]
    fn get_or_compute_runs_once_across_threads() {
        let cache: Arc<Cache<u64>> = Arc::new(Cache::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                thread::spawn(move || {
                    cache.get_or_compute(&Key::new("cell/d"), || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        thread::yield_now();
                        99
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one execution");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let cache: Cache<u32> = Cache::new();
        let a = match cache.acquire(&Key::new("cell/x")) {
            Acquire::Owner(t) => t,
            _ => panic!(),
        };
        assert!(matches!(
            cache.acquire(&Key::new("cell/y")),
            Acquire::Owner(_)
        ));
        a.publish(1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
