//! A minimal blocking HTTP client for the daemon — used by the
//! `doebench query` subcommand and the round-trip tests, so the CI
//! smoke job needs no external HTTP tooling.

use std::io::{Read, Write};
use std::net::TcpStream;

use crate::http::percent_encode;

/// A fetched response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A client-side failure (connect, I/O, malformed response).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn err(msg: impl std::fmt::Display) -> ClientError {
    ClientError(msg.to_string())
}

/// Issue one request (`Connection: close`; the server never keeps
/// connections alive) and read the full response.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| err(format!("connect {addr}: {e}")))?;
    let mut head = format!("{method} {target} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).map_err(err)?;
    stream.write_all(body).map_err(err)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(err)?;
    parse_response(&raw)
}

/// GET the daemon's answer to a shorthand query.
pub fn query_shorthand(
    addr: &str,
    shorthand: &str,
    format: &str,
) -> Result<ClientResponse, ClientError> {
    let target = format!(
        "/query?q={}&format={}",
        percent_encode(shorthand),
        percent_encode(format)
    );
    request(addr, "GET", &target, &[])
}

/// POST a JSON query document.
pub fn query_json(addr: &str, json: &str, format: &str) -> Result<ClientResponse, ClientError> {
    let target = format!("/query?format={}", percent_encode(format));
    request(addr, "POST", &target, json.as_bytes())
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| err("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..header_end]).map_err(err)?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| err("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(format!("bad status line: {status_line}")))?;
    let headers = lines
        .filter_map(|l| {
            let (k, v) = l.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Doebench-Cache: hit\r\n\r\nbody bytes";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-doebench-cache"), Some("hit"));
        assert_eq!(r.header("X-DOEBENCH-CACHE"), Some("hit"));
        assert_eq!(r.text(), "body bytes");
    }
}
