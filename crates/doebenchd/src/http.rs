//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! Hand-rolled because the build environment has no crates.io access
//! (no hyper, no tokio). The daemon's needs are narrow: parse a request
//! line, a handful of headers, and an optional `Content-Length` body;
//! write a status line, headers, and a body; `Connection: close` on
//! every response so connection lifecycle stays trivial. No chunked
//! encoding, no keep-alive, no TLS — campaign queries are long-lived
//! computations, not a hot request path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on header block and body sizes; a query is at most a few KB.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component, percent-decoded (`/query`).
    pub path: String,
    /// Raw query string (undecoded; split first, decode per value).
    pub query: String,
    /// Body bytes (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of a query-string parameter, percent-decoded.
    pub fn param(&self, name: &str) -> Option<String> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then(|| percent_decode(v))
        })
    }
}

/// A malformed request (mapped to 400 by the server loop).
#[derive(Debug)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn err(msg: impl Into<String>) -> HttpError {
    HttpError(msg.into())
}

/// Decode `%XX` escapes and `+` (form-style spaces).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Encode a string for use inside a query-string value.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Read and parse one request from a stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut header_bytes = 0;

    reader
        .read_line(&mut line)
        .map_err(|e| err(format!("read request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| err("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| err("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| err("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(err(format!("unsupported version {version}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        let n = reader
            .read_line(&mut h)
            .map_err(|e| err(format!("read header: {e}")))?;
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(err("header block too large"));
        }
        let h = h.trim_end();
        if n == 0 || h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| err("bad Content-Length"))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(err("body too large"));
                }
            }
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| err(format!("read body: {e}")))?;
    }

    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query: query.to_string(),
        body,
    })
}

/// A response under construction.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (name, value) beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` value.
    pub content_type: &'static str,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/json",
        }
    }

    /// Append a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serialize and send over a stream (always `Connection: close`).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        head.push_str(&format!("Content-Type: {}\r\n", self.content_type));
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        let raw = "table5@paper Frontier seed=0x7";
        let enc = percent_encode(raw);
        assert!(!enc.contains(' '));
        assert_eq!(percent_decode(&enc), raw);
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
    }
}
