//! End-to-end tests of the `doebench` binary: real process spawns, real
//! argument parsing, real output.

use std::process::Command;

fn doebench(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_doebench"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_lists_every_command() {
    let (stdout, _, ok) = doebench(&["help"]);
    assert!(ok);
    for cmd in [
        "table1",
        "table4",
        "table5",
        "table6",
        "table7",
        "compare",
        "check",
        "machines",
        "env",
        "figure",
        "sweep",
        "trace",
        "native",
        "internode",
        "collectives",
        "extensions",
        "variants",
        "explain",
    ] {
        assert!(stdout.contains(&format!("doebench {cmd}")), "missing {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let (_, stderr, ok) = doebench(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn table1_prints_the_eight_combos() {
    let (stdout, _, ok) = doebench(&["table1"]);
    assert!(ok);
    assert_eq!(stdout.matches("#cores").count(), 3);
    assert_eq!(stdout.matches("#threads").count(), 3);
}

#[test]
fn machines_filters_by_category() {
    let (cpu, _, ok) = doebench(&["machines", "--cpu"]);
    assert!(ok);
    assert!(cpu.contains("29. Trinity") && !cpu.contains("1. Frontier"));
    let (gpu, _, ok) = doebench(&["machines", "--gpu"]);
    assert!(ok);
    assert!(gpu.contains("1. Frontier") && !gpu.contains("141. Manzano"));
}

#[test]
fn figure_validates_its_argument() {
    let (stdout, _, ok) = doebench(&["figure", "2"]);
    assert!(ok);
    assert!(stdout.contains("Summit"));
    let (_, _, ok) = doebench(&["figure", "9"]);
    assert!(!ok);
    let (dot, _, ok) = doebench(&["figure", "1", "--dot"]);
    assert!(ok);
    assert!(dot.starts_with("graph"));
}

#[test]
fn env_matches_tables_8_and_9() {
    let (stdout, _, ok) = doebench(&["env"]);
    assert!(ok);
    assert!(stdout.contains("cray-mpich/8.1.23")); // Frontier
    assert!(stdout.contains("openmpi/1.10")); // Manzano
    assert!(stdout.contains("cuda/11.7")); // Perlmutter
}

#[test]
fn explain_renders_and_rejects() {
    let (stdout, _, ok) = doebench(&["explain", "Polaris"]);
    assert!(ok);
    assert!(stdout.contains("launch"));
    assert!(stdout.contains("(paper:"));
    let (_, _, ok) = doebench(&["explain", "nonesuch"]);
    assert!(!ok);
}

#[test]
fn csv_rendering_flag_applies() {
    let (stdout, _, ok) = doebench(&["machines", "--csv"]);
    assert!(ok);
    assert!(stdout.starts_with("Rank/Name,"));
    assert!(stdout.lines().count() >= 14);
}

#[test]
fn conflicting_format_flags_are_rejected() {
    let (_, stderr, ok) = doebench(&["machines", "--md", "--csv"]);
    assert!(!ok);
    assert!(stderr.contains("conflicts with"), "{stderr}");
}

#[test]
fn jobs_zero_is_rejected_cleanly() {
    let (_, stderr, ok) = doebench(&["table1", "--jobs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("at least 1"), "{stderr}");
}

#[test]
fn unknown_flag_prints_generated_usage() {
    let (_, stderr, ok) = doebench(&["table4", "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag --frobnicate"), "{stderr}");
    assert!(stderr.contains("usage: doebench table4"), "{stderr}");
}

#[test]
fn per_command_help_is_generated() {
    let (stdout, _, ok) = doebench(&["table4", "--help"]);
    assert!(ok);
    assert!(stdout.contains("usage: doebench table4 [machine...]"));
    assert!(stdout.contains("--json"));
}

#[test]
fn table4_accepts_a_machine_subset() {
    let (stdout, _, ok) = doebench(&["table4", "Eagle"]);
    assert!(ok);
    assert!(stdout.contains("127. Eagle"));
    assert!(!stdout.contains("29. Trinity"));
    let (_, stderr, ok) = doebench(&["table4", "NoSuchMachine"]);
    assert!(!ok);
    assert!(stderr.contains("unknown machine"), "{stderr}");
}

#[test]
fn local_query_matches_the_table_subcommand() {
    let (direct, _, ok) = doebench(&["table4"]);
    assert!(ok);
    let (queried, stderr, ok) = doebench(&["query", "--local", "table4"]);
    assert!(ok);
    assert_eq!(direct, queried, "query path must be byte-identical");
    assert!(stderr.contains("computed locally"), "{stderr}");
    let (json, _, ok) = doebench(&["query", "--local", "table4", "--format", "json"]);
    assert!(ok);
    assert!(json.starts_with("{\"code_version\""), "{json}");
}
