//! `doebench` — command-line driver for the DOE Top500 microbenchmark
//! suite.
//!
//! ```text
//! doebench table4 [--full] [--md|--csv]     regenerate Table 4
//! doebench table5 [--full] [--md|--csv]     regenerate Table 5
//! doebench table6 [--full] [--md|--csv]     regenerate Table 6
//! doebench table7 [--full]                  regenerate Table 7
//! doebench compare [--full]                 all tables, paper vs measured
//! doebench table1                           the OMP_* sweep combinations
//! doebench machines [--cpu|--gpu]           Tables 2/3 (system inventory)
//! doebench env [--cpu|--gpu]                Tables 8/9 (software versions)
//! doebench figure <1|2|3> [--dot]           node diagrams (Figures 1-3)
//! doebench native [elems]                   BabelStream on this host
//! ```

use doebench::omp::EnvCombo;
use doebench::report::Table;
use doebench::{experiments, figures, table4, table5, table6, table7, Campaign};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let full = args.iter().any(|a| a == "--full");
    let checked = args.iter().any(|a| a == "--check")
        || std::env::var("DOEBENCH_CHECK").is_ok_and(|v| v == "1");
    if checked {
        // Must happen before any world is constructed: runtimes snapshot
        // the flag at creation time.
        doebench::dessan::set_checks_enabled(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let jobs = args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| die("--jobs needs a positive integer"));
        doebench::benchlib::set_jobs(jobs);
    }
    let campaign = if full {
        Campaign::paper()
    } else {
        Campaign::quick()
    };
    let render = |t: Table| -> String {
        if args.iter().any(|a| a == "--md") {
            t.to_markdown()
        } else if args.iter().any(|a| a == "--csv") {
            t.to_csv()
        } else {
            t.to_ascii()
        }
    };

    match cmd {
        "table1" => {
            let mut t = Table::new(
                "Table 1: OpenMP environment combinations",
                &["OMP_NUM_THREADS", "OMP_PROC_BIND", "OMP_PLACES"],
            );
            for c in EnvCombo::table1() {
                let s = c.to_string();
                let cells: Vec<String> = s
                    .split_whitespace()
                    .map(|kv| kv.split('=').nth(1).unwrap_or("-").to_string())
                    .collect();
                t.push_row(cells);
            }
            print!("{}", render(t));
        }
        "table4" => {
            let rows = table4::run(&campaign);
            print!("{}", render(table4::render(&rows)));
        }
        "table5" => {
            let rows = table5::run(&campaign);
            print!("{}", render(table5::render(&rows)));
        }
        "table6" => {
            let rows = table6::run(&campaign);
            print!("{}", render(table6::render(&rows)));
        }
        "table7" => {
            let rows = table7::run(&campaign);
            print!("{}", render(table7::render(&rows)));
        }
        "check" => {
            // Self-verification: regenerate and test the headline claims.
            let claims = doebench::verify::run_checks(&campaign);
            let mut failures = 0;
            for c in &claims {
                let status = if c.pass { "PASS" } else { "FAIL" };
                if !c.pass {
                    failures += 1;
                }
                println!("[{status}] {}", c.name);
                println!("       {}", c.detail);
            }
            println!(
                "\n{}/{} headline claims reproduced",
                claims.len() - failures,
                claims.len()
            );
            if failures > 0 {
                std::process::exit(1);
            }
        }
        "compare" | "experiments" => {
            let results = experiments::run_all(&campaign);
            match args
                .iter()
                .position(|a| a == "--outdir")
                .and_then(|i| args.get(i + 1))
            {
                Some(dir) => {
                    let written =
                        doebench::bundle::write_bundle(&results, std::path::Path::new(dir))
                            .unwrap_or_else(|e| die(&format!("write bundle to {dir}: {e}")));
                    eprintln!("{} artifacts written to {dir}", written.len());
                }
                None => print!("{}", experiments::render_markdown(&results)),
            }
        }
        "machines" => {
            let cpu_only = args.iter().any(|a| a == "--cpu");
            let gpu_only = args.iter().any(|a| a == "--gpu");
            let mut t = Table::new(
                "Tables 2-3: US DOE systems above rank 150, June 2023 Top500",
                &[
                    "Rank/Name",
                    "Location",
                    "CPU",
                    "Accelerator",
                    "Devices",
                    "Cores",
                ],
            );
            for m in doebench::machines::all_machines() {
                if (cpu_only && m.is_accelerated()) || (gpu_only && !m.is_accelerated()) {
                    continue;
                }
                t.push_row(vec![
                    m.table_label(),
                    m.location.to_string(),
                    m.cpu_model.to_string(),
                    m.accelerator_model.unwrap_or("-").to_string(),
                    m.topo.device_count().to_string(),
                    m.topo.core_count().to_string(),
                ]);
            }
            print!("{}", render(t));
        }
        "env" => {
            let cpu_only = args.iter().any(|a| a == "--cpu");
            let gpu_only = args.iter().any(|a| a == "--gpu");
            let mut t = Table::new(
                "Tables 8-9: software environments",
                &["Rank/Name", "Compiler", "Device Library", "MPI"],
            );
            for m in doebench::machines::all_machines() {
                if (cpu_only && m.is_accelerated()) || (gpu_only && !m.is_accelerated()) {
                    continue;
                }
                t.push_row(vec![
                    m.table_label(),
                    m.software.compiler.to_string(),
                    m.software.device_library.unwrap_or("-").to_string(),
                    m.software.mpi.to_string(),
                ]);
            }
            print!("{}", render(t));
        }
        "explain" => {
            // The model algebra behind one machine's table rows.
            let machine = args.get(1).map(String::as_str).unwrap_or("Frontier");
            match doebench::explain::machine_report(machine) {
                Some(r) => print!("{r}"),
                None => die(&format!("unknown machine: {machine}")),
            }
        }
        "figure" => {
            let n: u8 = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die("usage: doebench figure <1|2|3> [--dot]"));
            let out = if args.iter().any(|a| a == "--dot") {
                figures::render_dot(n)
            } else {
                figures::render_ascii(n)
            };
            match out {
                Some(s) => print!("{s}"),
                None => die("figure must be 1, 2, or 3"),
            }
        }
        "native" => {
            let elems: usize = args
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(4 * 1024 * 1024);
            let rep =
                doebench::babelstream::run_native(&doebench::babelstream::NativeStreamConfig {
                    elems,
                    iters: 20,
                    nthreads: None,
                });
            let mut t = Table::new(
                format!(
                    "BabelStream (native, {} threads, {} doubles, verified: {})",
                    rep.nthreads, elems, rep.verified
                ),
                &["Kernel", "Mean GB/s", "Best GB/s"],
            );
            for (op, s) in &rep.per_op {
                t.push_row(vec![
                    op.to_string(),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.max),
                ]);
            }
            print!("{}", render(t));
        }
        "sweep" => {
            // OSU message-size latency curve on one machine, as a table or
            // a standalone SVG chart.
            let machine = args.get(1).map(String::as_str).unwrap_or("Eagle");
            let m = doebench::machines::by_name(machine)
                .unwrap_or_else(|| die(&format!("unknown machine: {machine}")));
            let mut cfg = doebench::osu::OsuConfig::paper();
            cfg.reps = if full { 100 } else { 10 };
            cfg.small_iters = if full { 1000 } else { 100 };
            cfg.large_iters = if full { 100 } else { 10 };
            let socket =
                doebench::osu::on_socket_pair(&m.topo).unwrap_or_else(|| die("machine too small"));
            let node =
                doebench::osu::on_node_pair(&m.topo).unwrap_or_else(|| die("machine too small"));
            let lat_s = doebench::osu::osu_latency(&m.topo, &m.mpi, socket, &cfg, 1);
            let lat_n = doebench::osu::osu_latency(&m.topo, &m.mpi, node, &cfg, 2);
            if let Some(path) = args
                .iter()
                .position(|a| a == "--svg")
                .and_then(|i| args.get(i + 1))
            {
                let mut chart = doebench::report::LineChart::new(
                    format!("OSU point-to-point latency on {}", m.name),
                    "message size (bytes)",
                    "one-way latency (us)",
                );
                chart.log_x = true;
                chart.log_y = true;
                let series = |pts: &[doebench::osu::LatencyPoint]| -> Vec<(f64, f64)> {
                    pts.iter()
                        .map(|p| (p.bytes.max(1) as f64, p.one_way_us.mean))
                        .collect()
                };
                chart.push_series("on-socket", series(&lat_s));
                chart.push_series("on-node", series(&lat_n));
                std::fs::write(path, chart.to_svg())
                    .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                eprintln!("chart written to {path}");
            } else {
                let mut t = Table::new(
                    format!("OSU latency sweep on {}", m.name),
                    &["Bytes", "On-Socket (us)", "On-Node (us)"],
                );
                for (s, n) in lat_s.iter().zip(&lat_n) {
                    t.push_row(vec![
                        s.bytes.to_string(),
                        format!("{:.3}", s.one_way_us.mean),
                        format!("{:.3}", n.one_way_us.mean),
                    ]);
                }
                print!("{}", render(t));
            }
        }
        "trace" => {
            // Record a short simulated Comm|Scope-style sequence on a
            // machine and emit a chrome://tracing / Perfetto JSON timeline.
            let machine = args.get(1).map(String::as_str).unwrap_or("Frontier");
            let m = doebench::machines::by_name(machine)
                .unwrap_or_else(|| die(&format!("unknown machine: {machine}")));
            if !m.is_accelerated() {
                die("trace requires an accelerator machine");
            }
            let mut rt = doebench::gpurt::GpuRuntime::new(
                m.topo.clone(),
                m.gpu_models.clone(),
                campaign.seed,
            );
            rt.enable_tracing();
            let dev = rt.current_device();
            let s = rt.default_stream(dev).expect("stream");
            let numa = m.topo.device(dev).expect("device").local_numa;
            let host = doebench::gpurt::Buffer::pinned_host(numa, 1 << 30);
            let devb = doebench::gpurt::Buffer::device(dev, 1 << 30);
            for _ in 0..8 {
                rt.launch_empty(&s).expect("launch");
            }
            rt.device_synchronize().expect("sync");
            for bytes in [128u64, 1 << 20, 1 << 26] {
                rt.memcpy_async(&devb, &host, bytes, &s).expect("h2d");
                rt.memcpy_async(&host, &devb, bytes, &s).expect("d2h");
            }
            rt.stream_synchronize(&s).expect("sync");
            let trace = rt.take_trace().expect("tracing enabled");
            let json = trace.to_chrome_json();
            match args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
            {
                Some(path) => {
                    std::fs::write(path, &json)
                        .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                    eprintln!("{} spans written to {path}", trace.len());
                }
                None => println!("{json}"),
            }
        }
        "table4-native" => {
            // The paper's Table 4 protocol on *this* machine.
            let cfg = if full {
                doebench::babelstream::NativeTable4Config::paper()
            } else {
                doebench::babelstream::NativeTable4Config {
                    elems: 8 * 1024 * 1024,
                    iters: 10,
                    reps: 5,
                }
            };
            let rep = doebench::babelstream::run_native_table4(&cfg);
            let mut t = Table::new(
                format!(
                    "This host's Table 4 row ({} cores x {} SMT detected)",
                    rep.topology.physical_cores,
                    rep.topology.smt()
                ),
                &["Single (GB/s)", "All (GB/s)", "Best kernel", "Best threads"],
            );
            t.push_row(vec![
                doebench::report::pm_summary(&rep.single),
                doebench::report::pm_summary(&rep.all),
                rep.best_op.to_string(),
                rep.best_threads.to_string(),
            ]);
            print!("{}", render(t));
        }
        "latency" => {
            // Native pointer-chase: memory latency of this host.
            let pts = doebench::babelstream::run_pointer_chase(
                &doebench::babelstream::ChaseConfig::sweep(),
            );
            let mut t = Table::new(
                "Memory latency on this host (dependent pointer chase)",
                &["Working set", "ns/load"],
            );
            for p in pts {
                // dessan::allow(nondet-taint): table reports measured wall-clock latency of this host — real-time by design.
                t.push_row(vec![
                    format!("{} KiB", p.bytes / 1024),
                    format!("{:.2}", p.ns_per_load),
                ]);
            }
            print!("{}", render(t));
        }
        "extensions" => {
            // Future work 3: the Intel/AMD/Arm comparison.
            print!("{}", render(doebench::studies::cpu_vendor_table(&campaign)));
        }
        "variants" => {
            // Future work 4: MPI implementation comparison.
            let machine = args.get(1).map(String::as_str).unwrap_or("Summit");
            match doebench::studies::mpi_variant_table(machine, &campaign) {
                Some(t) => print!("{}", render(t)),
                None => die(&format!("unknown machine: {machine}")),
            }
        }
        "collectives" => {
            // Executed intra-node collectives on one machine.
            let machine = args.get(1).map(String::as_str).unwrap_or("Frontier");
            match doebench::studies::intranode_collectives_table(machine, &campaign) {
                Some(t) => print!("{}", render(t)),
                None => die(&format!("unknown or too-small machine: {machine}")),
            }
        }
        "internode" => {
            // Future work 1: inter-node latency/bandwidth, contention,
            // and collectives.
            print!("{}", render(doebench::studies::internode_latency_table(1)));
            println!("\nContention (\"there goes the neighborhood\"):");
            for (flows, bw) in doebench::studies::contention_series(2, 7) {
                println!("  {flows} background flows: {bw:>6.2} GB/s");
            }
            println!();
            print!("{}", render(doebench::studies::collectives_table()));
            println!("\nPlacement study (8-rank ring allreduce, 1 MiB):");
            println!(
                "{:<24} {:>12} {:>12}",
                "placement", "quiet (us)", "noisy (us)"
            );
            for (name, quiet, noisy) in doebench::studies::placement_study(3, 8, 1 << 20) {
                println!("{name:<24} {quiet:>12.1} {noisy:>12.1}");
            }
        }
        "help" | "--help" | "-h" => print_help(),
        other => {
            eprintln!("unknown command: {other}\n");
            print_help();
            std::process::exit(2);
        }
    }

    if checked {
        let findings = doebench::dessan::take_global_findings();
        if !findings.is_empty() {
            eprintln!("doebench --check: {} sanitizer finding(s):", findings.len());
            for f in &findings {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("doebench --check: no sanitizer findings");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn print_help() {
    println!(
        "doebench - latency & bandwidth microbenchmarks of US DOE Top500 systems\n\n\
         usage:\n\
         \x20 doebench table1                      OMP_* sweep combinations\n\
         \x20 doebench table4 [--full]             CPU machines: mem BW + MPI latency\n\
         \x20 doebench table5 [--full]             GPU machines: device BW + MPI latency\n\
         \x20 doebench table6 [--full]             GPU machines: Comm|Scope\n\
         \x20 doebench table7 [--full]             min-max summary per accelerator\n\
         \x20 doebench compare [--full]            all tables, paper vs measured (markdown)\n\
         \x20 doebench check                       self-verify the headline claims\n\
         \x20 doebench machines [--cpu|--gpu]      system inventory (Tables 2-3)\n\
         \x20 doebench env [--cpu|--gpu]           software environments (Tables 8-9)\n\
         \x20 doebench figure <1|2|3> [--dot]      node diagrams (Figures 1-3)\n\
         \x20 doebench explain [machine]           the model algebra behind a row\n\
         \x20 doebench sweep [machine] [--svg f]   OSU latency curve (table or SVG)\n\
         \x20 doebench trace [machine] [--out f]   chrome://tracing timeline of a run\n\
         \x20 doebench native [elems]              BabelStream on this host\n\
         \x20 doebench table4-native [--full]      this host's Table 4 row\n\
         \x20 doebench latency                     pointer-chase latency on this host\n\
         \x20 doebench internode                   inter-node study (future work 1)\n\
         \x20 doebench collectives [machine]       executed intra-node collectives\n\
         \x20 doebench extensions                  AMD/Arm/HBM CPUs (future work 3)\n\
         \x20 doebench variants [machine]          MPI implementations (future work 4)\n\n\
         options: --full  run the paper's 100-repetition protocol\n\
         \x20        --jobs N  worker threads (default: all cores; DOEBENCH_JOBS env)\n\
         \x20        --check  run the happens-before sanitizer (DOEBENCH_CHECK=1 env);\n\
         \x20                 exits 1 on any race/deadlock/leak finding\n\
         \x20        --md | --csv  alternative table renderings"
    );
}
