//! `doebench` — command-line driver for the DOE Top500 microbenchmark
//! suite.
//!
//! ```text
//! doebench table4 [machine...] [--full] [--md|--csv|--json]
//! doebench compare [--full] [--outdir DIR]
//! doebench serve [--port N]          start the query daemon
//! doebench query <shorthand|json>    ask a daemon (or --local)
//! doebench help                      the full command list
//! ```
//!
//! Every subcommand's flags are declared in a [`args::CmdSpec`] and
//! parsed by the typed parser in [`args`]; usage text is generated from
//! the same declarations. The table subcommands are thin clients of
//! `doebench::query` — the same typed [`Query`] path the daemon serves,
//! so CLI output and daemon bodies are byte-identical by construction.

mod args;

use std::io::Write as _;

use args::{CmdSpec, Flag, Parsed};
use doebench::omp::EnvCombo;
use doebench::query::{self, MachineSel, Query, QueryParams, TableId};
use doebench::report::{Format, Table};
use doebench::{experiments, figures, Campaign};

// Flags shared by every subcommand (campaign scope + worker pool).
const FULL: Flag = Flag::bool("full", "run the paper's 100-repetition protocol");
const CHECK: Flag = Flag::bool(
    "check",
    "run the happens-before sanitizer (DOEBENCH_CHECK=1); exit 1 on findings",
);
const JOBS: Flag = Flag::uint("jobs", "N", 1, "worker threads (default: all cores)");

// Output-format flags (mutually exclusive).
const MD: Flag = Flag::excl("md", "render as markdown", &["csv", "json"]);
const CSV: Flag = Flag::excl("csv", "render as CSV", &["md", "json"]);
const JSON: Flag = Flag::excl("json", "render as canonical JSON", &["md", "csv"]);

const BASE: [Flag; 3] = [FULL, CHECK, JOBS];
const TABLE_FLAGS: [Flag; 6] = [FULL, CHECK, JOBS, MD, CSV, JSON];
const TEXT_FLAGS: [Flag; 5] = [FULL, CHECK, JOBS, MD, CSV];

/// All subcommands, in help order.
const COMMANDS: &[CmdSpec] = &[
    CmdSpec {
        name: "table1",
        positionals: "",
        about: "OMP_* sweep combinations",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "table4",
        positionals: "[machine...]",
        about: "CPU machines: mem BW + MPI latency",
        flags: &TABLE_FLAGS,
    },
    CmdSpec {
        name: "table5",
        positionals: "[machine...]",
        about: "GPU machines: device BW + MPI latency",
        flags: &TABLE_FLAGS,
    },
    CmdSpec {
        name: "table6",
        positionals: "[machine...]",
        about: "GPU machines: Comm|Scope",
        flags: &TABLE_FLAGS,
    },
    CmdSpec {
        name: "table7",
        positionals: "",
        about: "min-max summary per accelerator",
        flags: &TABLE_FLAGS,
    },
    CmdSpec {
        name: "compare",
        positionals: "",
        about: "all tables, paper vs measured (markdown)",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            Flag::string("outdir", "DIR", "write the artifact bundle here"),
        ],
    },
    CmdSpec {
        name: "check",
        positionals: "",
        about: "self-verify the headline claims",
        flags: &BASE,
    },
    CmdSpec {
        name: "machines",
        positionals: "",
        about: "system inventory (Tables 2-3)",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            MD,
            CSV,
            Flag::excl("cpu", "CPU machines only", &["gpu"]),
            Flag::excl("gpu", "accelerator machines only", &["cpu"]),
        ],
    },
    CmdSpec {
        name: "env",
        positionals: "",
        about: "software environments (Tables 8-9)",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            MD,
            CSV,
            Flag::excl("cpu", "CPU machines only", &["gpu"]),
            Flag::excl("gpu", "accelerator machines only", &["cpu"]),
        ],
    },
    CmdSpec {
        name: "figure",
        positionals: "<1|2|3>",
        about: "node diagrams (Figures 1-3)",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            Flag::bool("dot", "emit Graphviz instead of ASCII"),
        ],
    },
    CmdSpec {
        name: "explain",
        positionals: "[machine]",
        about: "the model algebra behind a row",
        flags: &BASE,
    },
    CmdSpec {
        name: "sweep",
        positionals: "[machine]",
        about: "OSU latency curve (table or SVG)",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            MD,
            CSV,
            Flag::string("svg", "PATH", "write an SVG chart instead of a table"),
        ],
    },
    CmdSpec {
        name: "trace",
        positionals: "[machine]",
        about: "chrome://tracing timeline of a run",
        flags: &[
            FULL,
            CHECK,
            JOBS,
            Flag::string("out", "PATH", "write the JSON timeline here"),
        ],
    },
    CmdSpec {
        name: "native",
        positionals: "[elems]",
        about: "BabelStream on this host",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "table4-native",
        positionals: "",
        about: "this host's Table 4 row",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "latency",
        positionals: "",
        about: "pointer-chase latency on this host",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "internode",
        positionals: "",
        about: "inter-node study (future work 1)",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "collectives",
        positionals: "[machine]",
        about: "executed intra-node collectives",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "extensions",
        positionals: "",
        about: "AMD/Arm/HBM CPUs (future work 3)",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "variants",
        positionals: "[machine]",
        about: "MPI implementations (future work 4)",
        flags: &TEXT_FLAGS,
    },
    CmdSpec {
        name: "serve",
        positionals: "",
        about: "start the benchmark-query daemon",
        flags: &[
            CHECK,
            JOBS,
            Flag::uint("port", "N", 0, "TCP port (default 7733; 0 = ephemeral)"),
        ],
    },
    CmdSpec {
        name: "query",
        positionals: "<shorthand|json>",
        about: "send a query to a daemon (or --local)",
        flags: &[
            CHECK,
            JOBS,
            Flag::string(
                "addr",
                "HOST:PORT",
                "daemon address (default 127.0.0.1:7733)",
            ),
            Flag::string("format", "F", "ascii|md|csv|json (default ascii)"),
            Flag::bool("local", "answer in-process instead of asking a daemon"),
        ],
    },
];

fn spec_for(cmd: &str) -> Option<&'static CmdSpec> {
    let canonical = match cmd {
        "experiments" => "compare",
        other => other,
    };
    COMMANDS.iter().find(|s| s.name == canonical)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(String::as_str).unwrap_or("help");
    if matches!(cmd, "help" | "--help" | "-h") {
        print_help();
        return;
    }
    let Some(spec) = spec_for(cmd) else {
        eprintln!("unknown command: {cmd}\n");
        print_help();
        std::process::exit(2);
    };
    if argv[1..].iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", spec.help());
        return;
    }
    let p = args::parse(spec, &argv[1..]).unwrap_or_else(|e| die(&e));

    let checked = p.has("check") || std::env::var("DOEBENCH_CHECK").is_ok_and(|v| v == "1");
    if checked {
        // Must happen before any world is constructed: runtimes snapshot
        // the flag at creation time.
        doebench::dessan::set_checks_enabled(true);
    }
    if let Some(jobs) = p.uint("jobs") {
        doebench::benchlib::set_jobs(jobs as usize);
    }
    let full = p.has("full");
    let campaign = if full {
        Campaign::paper()
    } else {
        Campaign::quick()
    };

    run_command(spec, &p, &campaign, full);

    if checked {
        let findings = doebench::dessan::take_global_findings();
        if !findings.is_empty() {
            eprintln!("doebench --check: {} sanitizer finding(s):", findings.len());
            for f in &findings {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("doebench --check: no sanitizer findings");
    }
}

/// The selected output format (`Ascii` when no format flag was given).
fn format_of(p: &Parsed) -> Format {
    if p.has("md") {
        Format::Markdown
    } else if p.has("csv") {
        Format::Csv
    } else if p.has("json") {
        Format::Json
    } else {
        Format::Ascii
    }
}

/// Render a legacy string-table in the selected text format.
fn render_table(p: &Parsed, t: Table) -> String {
    match format_of(p) {
        Format::Markdown => t.to_markdown(),
        Format::Csv => t.to_csv(),
        _ => t.to_ascii(),
    }
}

/// Run a table query through the same typed path the daemon serves.
fn print_table_query(id: TableId, p: &Parsed, full: bool) {
    let machines = if p.positionals.is_empty() {
        MachineSel::All
    } else {
        MachineSel::Named(p.positionals.clone())
    };
    let q = Query::Table {
        id,
        machines,
        params: if full {
            QueryParams::paper()
        } else {
            QueryParams::quick()
        },
    };
    let result = query::run_query(&q).unwrap_or_else(|e| die(&e.to_string()));
    print!("{}", result.body(format_of(p)));
}

fn no_positionals(spec: &CmdSpec, p: &Parsed) {
    if !p.positionals.is_empty() {
        die(&format!(
            "{} takes no positional arguments\n{}",
            spec.name,
            spec.usage()
        ));
    }
}

fn run_command(spec: &'static CmdSpec, p: &Parsed, campaign: &Campaign, full: bool) {
    match spec.name {
        "table1" => {
            no_positionals(spec, p);
            let mut t = Table::new(
                "Table 1: OpenMP environment combinations",
                &["OMP_NUM_THREADS", "OMP_PROC_BIND", "OMP_PLACES"],
            );
            for c in EnvCombo::table1() {
                let s = c.to_string();
                let cells: Vec<String> = s
                    .split_whitespace()
                    .map(|kv| kv.split('=').nth(1).unwrap_or("-").to_string())
                    .collect();
                t.push_row(cells);
            }
            print!("{}", render_table(p, t));
        }
        "table4" => print_table_query(TableId::Table4, p, full),
        "table5" => print_table_query(TableId::Table5, p, full),
        "table6" => print_table_query(TableId::Table6, p, full),
        "table7" => {
            no_positionals(spec, p);
            print_table_query(TableId::Table7, p, full);
        }
        "check" => {
            no_positionals(spec, p);
            // Self-verification: regenerate and test the headline claims.
            let claims = doebench::verify::run_checks(campaign);
            let mut failures = 0;
            for c in &claims {
                let status = if c.pass { "PASS" } else { "FAIL" };
                if !c.pass {
                    failures += 1;
                }
                println!("[{status}] {}", c.name);
                println!("       {}", c.detail);
            }
            println!(
                "\n{}/{} headline claims reproduced",
                claims.len() - failures,
                claims.len()
            );
            if failures > 0 {
                std::process::exit(1);
            }
        }
        "compare" => {
            no_positionals(spec, p);
            let results = experiments::run_all(campaign);
            match p.str("outdir") {
                Some(dir) => {
                    let written =
                        doebench::bundle::write_bundle(&results, std::path::Path::new(dir))
                            .unwrap_or_else(|e| die(&format!("write bundle to {dir}: {e}")));
                    eprintln!("{} artifacts written to {dir}", written.len());
                }
                None => print!("{}", experiments::render_markdown(&results)),
            }
        }
        "machines" => {
            no_positionals(spec, p);
            let mut t = Table::new(
                "Tables 2-3: US DOE systems above rank 150, June 2023 Top500",
                &[
                    "Rank/Name",
                    "Location",
                    "CPU",
                    "Accelerator",
                    "Devices",
                    "Cores",
                ],
            );
            for m in doebench::machines::all_machines() {
                if (p.has("cpu") && m.is_accelerated()) || (p.has("gpu") && !m.is_accelerated()) {
                    continue;
                }
                t.push_row(vec![
                    m.table_label(),
                    m.location.to_string(),
                    m.cpu_model.to_string(),
                    m.accelerator_model.unwrap_or("-").to_string(),
                    m.topo.device_count().to_string(),
                    m.topo.core_count().to_string(),
                ]);
            }
            print!("{}", render_table(p, t));
        }
        "env" => {
            no_positionals(spec, p);
            let mut t = Table::new(
                "Tables 8-9: software environments",
                &["Rank/Name", "Compiler", "Device Library", "MPI"],
            );
            for m in doebench::machines::all_machines() {
                if (p.has("cpu") && m.is_accelerated()) || (p.has("gpu") && !m.is_accelerated()) {
                    continue;
                }
                t.push_row(vec![
                    m.table_label(),
                    m.software.compiler.to_string(),
                    m.software.device_library.unwrap_or("-").to_string(),
                    m.software.mpi.to_string(),
                ]);
            }
            print!("{}", render_table(p, t));
        }
        "explain" => {
            // The model algebra behind one machine's table rows.
            let machine = p
                .positionals
                .first()
                .map(String::as_str)
                .unwrap_or("Frontier");
            match doebench::explain::machine_report(machine) {
                Some(r) => print!("{r}"),
                None => die(&format!("unknown machine: {machine}")),
            }
        }
        "figure" => {
            let n: u8 = p
                .positionals
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| die(&spec.usage()));
            let out = if p.has("dot") {
                figures::render_dot(n)
            } else {
                figures::render_ascii(n)
            };
            match out {
                Some(s) => print!("{s}"),
                None => die("figure must be 1, 2, or 3"),
            }
        }
        "native" => {
            let elems: usize = p
                .positionals
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(4 * 1024 * 1024);
            let rep =
                doebench::babelstream::run_native(&doebench::babelstream::NativeStreamConfig {
                    elems,
                    iters: 20,
                    nthreads: None,
                });
            let mut t = Table::new(
                format!(
                    "BabelStream (native, {} threads, {} doubles, verified: {})",
                    rep.nthreads, elems, rep.verified
                ),
                &["Kernel", "Mean GB/s", "Best GB/s"],
            );
            for (op, s) in &rep.per_op {
                t.push_row(vec![
                    op.to_string(),
                    format!("{:.2}", s.mean),
                    format!("{:.2}", s.max),
                ]);
            }
            print!("{}", render_table(p, t));
        }
        "sweep" => {
            // OSU message-size latency curve on one machine, as a table or
            // a standalone SVG chart.
            let machine = p.positionals.first().map(String::as_str).unwrap_or("Eagle");
            let m = doebench::machines::by_name(machine)
                .unwrap_or_else(|| die(&format!("unknown machine: {machine}")));
            let mut cfg = doebench::osu::OsuConfig::paper();
            cfg.reps = if full { 100 } else { 10 };
            cfg.small_iters = if full { 1000 } else { 100 };
            cfg.large_iters = if full { 100 } else { 10 };
            let socket =
                doebench::osu::on_socket_pair(&m.topo).unwrap_or_else(|| die("machine too small"));
            let node =
                doebench::osu::on_node_pair(&m.topo).unwrap_or_else(|| die("machine too small"));
            let lat_s = doebench::osu::osu_latency(&m.topo, &m.mpi, socket, &cfg, 1);
            let lat_n = doebench::osu::osu_latency(&m.topo, &m.mpi, node, &cfg, 2);
            if let Some(path) = p.str("svg") {
                let mut chart = doebench::report::LineChart::new(
                    format!("OSU point-to-point latency on {}", m.name),
                    "message size (bytes)",
                    "one-way latency (us)",
                );
                chart.log_x = true;
                chart.log_y = true;
                let series = |pts: &[doebench::osu::LatencyPoint]| -> Vec<(f64, f64)> {
                    pts.iter()
                        .map(|pt| (pt.bytes.max(1) as f64, pt.one_way_us.mean))
                        .collect()
                };
                chart.push_series("on-socket", series(&lat_s));
                chart.push_series("on-node", series(&lat_n));
                std::fs::write(path, chart.to_svg())
                    .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                eprintln!("chart written to {path}");
            } else {
                let mut t = Table::new(
                    format!("OSU latency sweep on {}", m.name),
                    &["Bytes", "On-Socket (us)", "On-Node (us)"],
                );
                for (s, n) in lat_s.iter().zip(&lat_n) {
                    t.push_row(vec![
                        s.bytes.to_string(),
                        format!("{:.3}", s.one_way_us.mean),
                        format!("{:.3}", n.one_way_us.mean),
                    ]);
                }
                print!("{}", render_table(p, t));
            }
        }
        "trace" => {
            // Record a short simulated Comm|Scope-style sequence on a
            // machine and emit a chrome://tracing / Perfetto JSON timeline.
            let machine = p
                .positionals
                .first()
                .map(String::as_str)
                .unwrap_or("Frontier");
            let m = doebench::machines::by_name(machine)
                .unwrap_or_else(|| die(&format!("unknown machine: {machine}")));
            if !m.is_accelerated() {
                die("trace requires an accelerator machine");
            }
            let mut rt = doebench::gpurt::GpuRuntime::new(
                m.topo.clone(),
                m.gpu_models.clone(),
                campaign.seed,
            );
            rt.enable_tracing();
            let dev = rt.current_device();
            let s = rt.default_stream(dev).expect("stream");
            let numa = m.topo.device(dev).expect("device").local_numa;
            let host = doebench::gpurt::Buffer::pinned_host(numa, 1 << 30);
            let devb = doebench::gpurt::Buffer::device(dev, 1 << 30);
            for _ in 0..8 {
                rt.launch_empty(&s).expect("launch");
            }
            rt.device_synchronize().expect("sync");
            for bytes in [128u64, 1 << 20, 1 << 26] {
                rt.memcpy_async(&devb, &host, bytes, &s).expect("h2d");
                rt.memcpy_async(&host, &devb, bytes, &s).expect("d2h");
            }
            rt.stream_synchronize(&s).expect("sync");
            let trace = rt.take_trace().expect("tracing enabled");
            let json = trace.to_chrome_json();
            match p.str("out") {
                Some(path) => {
                    std::fs::write(path, &json)
                        .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
                    eprintln!("{} spans written to {path}", trace.len());
                }
                None => println!("{json}"),
            }
        }
        "table4-native" => {
            no_positionals(spec, p);
            // The paper's Table 4 protocol on *this* machine.
            let cfg = if full {
                doebench::babelstream::NativeTable4Config::paper()
            } else {
                doebench::babelstream::NativeTable4Config {
                    elems: 8 * 1024 * 1024,
                    iters: 10,
                    reps: 5,
                }
            };
            let rep = doebench::babelstream::run_native_table4(&cfg);
            let mut t = Table::new(
                format!(
                    "This host's Table 4 row ({} cores x {} SMT detected)",
                    rep.topology.physical_cores,
                    rep.topology.smt()
                ),
                &["Single (GB/s)", "All (GB/s)", "Best kernel", "Best threads"],
            );
            t.push_row(vec![
                doebench::report::pm_summary(&rep.single),
                doebench::report::pm_summary(&rep.all),
                rep.best_op.to_string(),
                rep.best_threads.to_string(),
            ]);
            print!("{}", render_table(p, t));
        }
        "latency" => {
            no_positionals(spec, p);
            // Native pointer-chase: memory latency of this host.
            let pts = doebench::babelstream::run_pointer_chase(
                &doebench::babelstream::ChaseConfig::sweep(),
            );
            let mut t = Table::new(
                "Memory latency on this host (dependent pointer chase)",
                &["Working set", "ns/load"],
            );
            for pt in pts {
                // dessan::allow(nondet-taint): table reports measured wall-clock latency of this host — real-time by design.
                t.push_row(vec![
                    format!("{} KiB", pt.bytes / 1024),
                    format!("{:.2}", pt.ns_per_load),
                ]);
            }
            print!("{}", render_table(p, t));
        }
        "extensions" => {
            no_positionals(spec, p);
            // Future work 3: the Intel/AMD/Arm comparison.
            print!(
                "{}",
                render_table(p, doebench::studies::cpu_vendor_table(campaign))
            );
        }
        "variants" => {
            // Future work 4: MPI implementation comparison.
            let machine = p
                .positionals
                .first()
                .map(String::as_str)
                .unwrap_or("Summit");
            match doebench::studies::mpi_variant_table(machine, campaign) {
                Some(t) => print!("{}", render_table(p, t)),
                None => die(&format!("unknown machine: {machine}")),
            }
        }
        "collectives" => {
            // Executed intra-node collectives on one machine.
            let machine = p
                .positionals
                .first()
                .map(String::as_str)
                .unwrap_or("Frontier");
            match doebench::studies::intranode_collectives_table(machine, campaign) {
                Some(t) => print!("{}", render_table(p, t)),
                None => die(&format!("unknown or too-small machine: {machine}")),
            }
        }
        "internode" => {
            no_positionals(spec, p);
            // Future work 1: inter-node latency/bandwidth, contention,
            // and collectives.
            print!(
                "{}",
                render_table(p, doebench::studies::internode_latency_table(1))
            );
            println!("\nContention (\"there goes the neighborhood\"):");
            for (flows, bw) in doebench::studies::contention_series(2, 7) {
                println!("  {flows} background flows: {bw:>6.2} GB/s");
            }
            println!();
            print!(
                "{}",
                render_table(p, doebench::studies::collectives_table())
            );
            println!("\nPlacement study (8-rank ring allreduce, 1 MiB):");
            println!(
                "{:<24} {:>12} {:>12}",
                "placement", "quiet (us)", "noisy (us)"
            );
            for (name, quiet, noisy) in doebench::studies::placement_study(3, 8, 1 << 20) {
                println!("{name:<24} {quiet:>12.1} {noisy:>12.1}");
            }
        }
        "serve" => {
            no_positionals(spec, p);
            let port = p.uint("port").unwrap_or(doebenchd::DEFAULT_PORT as u64);
            if port > u16::MAX as u64 {
                die(&format!("--port must be at most {}", u16::MAX));
            }
            let mut server = doebenchd::Server::start(port as u16)
                .unwrap_or_else(|e| die(&format!("bind port {port}: {e}")));
            eprintln!("doebenchd listening on http://{}", server.addr());
            eprintln!("try: doebench query table4 --addr {}", server.addr());
            server.join();
        }
        "query" => run_query_command(spec, p),
        other => unreachable!("unrouted command {other}"),
    }
}

fn run_query_command(spec: &CmdSpec, p: &Parsed) {
    let text = p.positionals.join(" ");
    if text.is_empty() {
        die(&spec.usage());
    }
    let format_name = p.str("format").unwrap_or("ascii");
    let format = Format::parse(format_name)
        .unwrap_or_else(|| die(&format!("unknown format '{format_name}'")));
    let is_json_doc = text.trim_start().starts_with('{');

    if p.has("local") {
        let q = if is_json_doc {
            Query::parse(&text)
        } else {
            Query::parse_shorthand(&text)
        }
        .unwrap_or_else(|e| die(&format!("bad query: {e}")));
        let result = query::run_query(&q).unwrap_or_else(|e| die(&e.to_string()));
        write_stdout(result.body(format).as_bytes());
        eprintln!("cache: none (computed locally, key {})", result.key);
        return;
    }

    let addr = p.str("addr").unwrap_or("127.0.0.1:7733");
    let resp = if is_json_doc {
        doebenchd::client::query_json(addr, &text, format_name)
    } else {
        doebenchd::client::query_shorthand(addr, &text, format_name)
    }
    .unwrap_or_else(|e| die(&format!("{e} (is a daemon running? try: doebench serve)")));
    if resp.status != 200 {
        eprint!("{}", resp.text());
        std::process::exit(1);
    }
    write_stdout(&resp.body);
    let h = |name: &str| resp.header(name).unwrap_or("?").to_string();
    eprintln!(
        "cache: {} ({} cached, {} executed, {} coalesced; key {})",
        h("x-doebench-cache"),
        h("x-doebench-cells-cached"),
        h("x-doebench-cells-executed"),
        h("x-doebench-cells-coalesced"),
        h("x-doebench-key"),
    );
}

/// Write exact bytes to stdout (bodies must survive unmodified so
/// `cmp` against offline output holds in CI).
fn write_stdout(bytes: &[u8]) {
    let mut out = std::io::stdout();
    out.write_all(bytes).expect("write stdout");
    out.flush().expect("flush stdout");
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn print_help() {
    println!("doebench - latency & bandwidth microbenchmarks of US DOE Top500 systems\n");
    println!("usage: doebench <command> [args] [flags]\n");
    println!("commands:");
    for spec in COMMANDS {
        let head = if spec.positionals.is_empty() {
            spec.name.to_string()
        } else {
            format!("{} {}", spec.name, spec.positionals)
        };
        println!("  doebench {head:<34} {}", spec.about);
    }
    println!(
        "\ncommon flags:\n\
         \x20 --full        run the paper's 100-repetition protocol\n\
         \x20 --jobs N      worker threads (default: all cores; DOEBENCH_JOBS env)\n\
         \x20 --check       run the happens-before sanitizer (DOEBENCH_CHECK=1 env);\n\
         \x20               exits 1 on any race/deadlock/leak finding\n\
         \x20 --md | --csv | --json   alternative table renderings\n\n\
         `doebench <command> --help` prints that command's generated usage."
    );
}
