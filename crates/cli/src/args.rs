//! A typed command-line parser for the `doebench` subcommands.
//!
//! Replaces the old ad-hoc `args.iter().position(...)` scanning, which
//! silently ignored unknown flags, accepted `--jobs` with a missing or
//! zero value only by `die()`ing inconsistently, and let `--md --csv`
//! fall through to whichever branch was checked first. Every subcommand
//! now declares its flags once ([`CmdSpec`]); parsing yields typed
//! values, duplicate and conflicting flags are clean errors, and usage
//! text is generated from the same declarations it validates against.

use std::fmt::Write as _;

/// What kind of value a flag carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Present/absent.
    Bool,
    /// Unsigned integer with an inclusive minimum (`--jobs 0` is how a
    /// typo looks, not a request for zero workers).
    UInt {
        /// Smallest accepted value.
        min: u64,
    },
    /// Free-form string.
    Str,
}

/// One declared flag.
pub struct Flag {
    /// Name without the leading `--`.
    pub name: &'static str,
    /// Value type.
    pub kind: Kind,
    /// Placeholder shown in usage for valued flags (`N`, `PATH`).
    pub value_name: &'static str,
    /// One-line description for the usage text.
    pub help: &'static str,
    /// Flags that cannot be combined with this one.
    pub conflicts: &'static [&'static str],
}

impl Flag {
    /// A boolean flag.
    pub const fn bool(name: &'static str, help: &'static str) -> Flag {
        Flag {
            name,
            kind: Kind::Bool,
            value_name: "",
            help,
            conflicts: &[],
        }
    }

    /// A boolean flag that excludes others.
    pub const fn excl(
        name: &'static str,
        help: &'static str,
        conflicts: &'static [&'static str],
    ) -> Flag {
        Flag {
            name,
            kind: Kind::Bool,
            value_name: "",
            help,
            conflicts,
        }
    }

    /// An unsigned-integer flag with a minimum.
    pub const fn uint(
        name: &'static str,
        value_name: &'static str,
        min: u64,
        help: &'static str,
    ) -> Flag {
        Flag {
            name,
            kind: Kind::UInt { min },
            value_name,
            help,
            conflicts: &[],
        }
    }

    /// A string flag.
    pub const fn string(name: &'static str, value_name: &'static str, help: &'static str) -> Flag {
        Flag {
            name,
            kind: Kind::Str,
            value_name,
            help,
            conflicts: &[],
        }
    }
}

/// One subcommand's declaration.
pub struct CmdSpec {
    /// Subcommand name.
    pub name: &'static str,
    /// Positional-argument summary for usage (`"[machine...]"`).
    pub positionals: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Accepted flags.
    pub flags: &'static [Flag],
}

impl CmdSpec {
    fn flag(&self, name: &str) -> Option<&'static Flag> {
        self.flags.iter().find(|f| f.name == name)
    }

    /// The generated one-line usage string.
    pub fn usage(&self) -> String {
        let mut u = format!("usage: doebench {}", self.name);
        if !self.positionals.is_empty() {
            let _ = write!(u, " {}", self.positionals);
        }
        for f in self.flags {
            match f.kind {
                Kind::Bool => {
                    let _ = write!(u, " [--{}]", f.name);
                }
                _ => {
                    let _ = write!(u, " [--{} {}]", f.name, f.value_name);
                }
            }
        }
        u
    }

    /// The generated multi-line help block (usage + per-flag lines).
    pub fn help(&self) -> String {
        let mut h = format!("{}\n  {}\n", self.usage(), self.about);
        if !self.flags.is_empty() {
            h.push_str("options:\n");
            for f in self.flags {
                let head = match f.kind {
                    Kind::Bool => format!("--{}", f.name),
                    _ => format!("--{} {}", f.name, f.value_name),
                };
                let _ = writeln!(h, "  {head:<18} {}", f.help);
            }
        }
        h
    }
}

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// From a [`Kind::Bool`] flag.
    Bool,
    /// From a [`Kind::UInt`] flag.
    UInt(u64),
    /// From a [`Kind::Str`] flag.
    Str(String),
}

/// A successfully parsed command line for one subcommand.
#[derive(Debug)]
pub struct Parsed {
    flags: Vec<(&'static str, Value)>,
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
}

impl Parsed {
    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    /// The value of an integer flag, if given.
    pub fn uint(&self, name: &str) -> Option<u64> {
        self.flags.iter().find_map(|(n, v)| match v {
            Value::UInt(u) if *n == name => Some(*u),
            _ => None,
        })
    }

    /// The value of a string flag, if given.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.flags.iter().find_map(|(n, v)| match v {
            Value::Str(s) if *n == name => Some(s.as_str()),
            _ => None,
        })
    }
}

/// Parse a subcommand's arguments against its spec.
///
/// Accepts `--flag value` and `--flag=value`; rejects unknown flags,
/// duplicates, conflicting combinations, missing values, non-numeric or
/// below-minimum integers. Everything that does not start with `--` is
/// a positional.
pub fn parse(spec: &CmdSpec, args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        flags: Vec::new(),
        positionals: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(stripped) = arg.strip_prefix("--") else {
            parsed.positionals.push(arg.clone());
            i += 1;
            continue;
        };
        let (name, inline) = match stripped.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (stripped, None),
        };
        let flag = spec
            .flag(name)
            .ok_or_else(|| format!("unknown flag --{name}\n{}", spec.usage()))?;
        if parsed.has(flag.name) {
            return Err(format!("--{name} given more than once"));
        }
        let value = match flag.kind {
            Kind::Bool => {
                if inline.is_some() {
                    return Err(format!("--{name} takes no value"));
                }
                Value::Bool
            }
            Kind::UInt { min } => {
                let raw = take_value(args, &mut i, name, inline)?;
                let v: u64 = raw
                    .parse()
                    .map_err(|_| format!("--{name} needs an integer, got '{raw}'"))?;
                if v < min {
                    return Err(format!("--{name} must be at least {min}, got {v}"));
                }
                Value::UInt(v)
            }
            Kind::Str => Value::Str(take_value(args, &mut i, name, inline)?),
        };
        for c in flag.conflicts {
            if parsed.has(c) {
                return Err(format!("--{name} conflicts with --{c}"));
            }
        }
        parsed.flags.push((flag.name, value));
        i += 1;
    }
    Ok(parsed)
}

fn take_value(
    args: &[String],
    i: &mut usize,
    name: &str,
    inline: Option<String>,
) -> Result<String, String> {
    if let Some(v) = inline {
        return Ok(v);
    }
    *i += 1;
    args.get(*i)
        .filter(|v| !v.starts_with("--"))
        .cloned()
        .ok_or_else(|| format!("--{name} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CmdSpec = CmdSpec {
        name: "demo",
        positionals: "[machine...]",
        about: "demo command",
        flags: &[
            Flag::bool("full", "paper protocol"),
            Flag::uint("jobs", "N", 1, "worker threads"),
            Flag::excl("md", "markdown", &["csv"]),
            Flag::excl("csv", "csv", &["md"]),
            Flag::string("outdir", "DIR", "artifact directory"),
        ],
    };

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn typed_values_and_positionals() {
        let p = parse(&SPEC, &v(&["Frontier", "--full", "--jobs", "4", "Eagle"])).unwrap();
        assert!(p.has("full"));
        assert_eq!(p.uint("jobs"), Some(4));
        assert_eq!(p.positionals, vec!["Frontier", "Eagle"]);
        let p = parse(&SPEC, &v(&["--jobs=8", "--outdir=out"])).unwrap();
        assert_eq!(p.uint("jobs"), Some(8));
        assert_eq!(p.str("outdir"), Some("out"));
    }

    #[test]
    fn jobs_zero_is_a_clean_error() {
        let e = parse(&SPEC, &v(&["--jobs", "0"])).unwrap_err();
        assert!(e.contains("at least 1"), "{e}");
        let e = parse(&SPEC, &v(&["--jobs", "many"])).unwrap_err();
        assert!(e.contains("needs an integer"), "{e}");
        let e = parse(&SPEC, &v(&["--jobs"])).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn duplicates_and_conflicts_are_errors() {
        let e = parse(&SPEC, &v(&["--full", "--full"])).unwrap_err();
        assert!(e.contains("more than once"), "{e}");
        let e = parse(&SPEC, &v(&["--md", "--csv"])).unwrap_err();
        assert!(e.contains("conflicts with"), "{e}");
        let e = parse(&SPEC, &v(&["--nope"])).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
    }

    #[test]
    fn usage_is_generated_from_the_spec() {
        let u = SPEC.usage();
        assert!(u.starts_with("usage: doebench demo [machine...]"));
        assert!(u.contains("[--jobs N]"));
        assert!(SPEC.help().contains("worker threads"));
    }
}
