//! The campaign scheduler: fan the (machine × benchmark-cell) grid of a
//! table over the worker pool.
//!
//! Every cell of a table — one benchmark suite on one machine — derives an
//! independent seed via [`crate::Campaign::seed_for`], so cells have no
//! shared state and can run on any thread in any order. The scheduler
//! exploits that: a table's cells are laid out as a flat descriptor list
//! in canonical machine order, mapped over
//! [`doe_benchlib::parallel_map_indexed`] (which preserves index order
//! exactly), and assembled back into rows. The result is bit-identical to
//! the serial path for every job count, including `--jobs 1`, which *is*
//! the serial path.
//!
//! Rep-level parallelism ([`doe_benchlib::run_reps_par`]) nests inside the
//! cell grid; nested calls degrade to serial on pool workers, so the
//! thread count never multiplies.

use doe_benchlib::parallel_map_indexed;

/// Run one closure per cell descriptor across the worker pool, returning
/// results in descriptor order.
///
/// This is the table-level entry point: build the cell list in canonical
/// machine order, call `run_cells`, and zip the results back.
pub fn run_cells<D: Sync, T: Send>(cells: &[D], f: impl Fn(&D) -> T + Sync) -> Vec<T> {
    parallel_map_indexed(cells.len(), |i| f(&cells[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_follow_descriptor_order() {
        let cells: Vec<u32> = (0..97).rev().collect();
        let out = run_cells(&cells, |&c| c * 2);
        let expect: Vec<u32> = cells.iter().map(|&c| c * 2).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = run_cells::<u8, u8>(&[], |&c| c);
        assert!(out.is_empty());
    }
}
