//! Runtime self-verification: the paper's headline claims, checked
//! against a fresh campaign.
//!
//! The same shape assertions that gate CI (`tests/integration_tables.rs`)
//! are exposed here as data, so a release binary can prove to its user —
//! `doebench check` — that the simulator still reproduces the paper
//! without needing a Rust toolchain.

use doe_topo::LinkClass;

use crate::campaign::Campaign;
use crate::experiments::{self, Results};

/// One verified claim.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Short claim name, quoting the paper where possible.
    pub name: &'static str,
    /// Whether the regenerated data satisfies it.
    pub pass: bool,
    /// Supporting numbers.
    pub detail: String,
}

fn t5<'a>(r: &'a Results, name: &str) -> &'a crate::table5::Row {
    r.table5
        .iter()
        .find(|x| x.machine == name)
        .expect("machine present")
}

fn t6<'a>(r: &'a Results, name: &str) -> &'a crate::table6::Row {
    r.table6
        .iter()
        .find(|x| x.machine == name)
        .expect("machine present")
}

/// Run the quickest campaign that can support the claims and evaluate
/// every claim.
pub fn run_checks(c: &Campaign) -> Vec<Claim> {
    let r = experiments::run_all(c);
    claims(&r)
}

/// Evaluate the claims against existing results.
pub fn claims(r: &Results) -> Vec<Claim> {
    let mut out = Vec::new();
    let mut claim = |name: &'static str, pass: bool, detail: String| {
        out.push(Claim { name, pass, detail });
    };

    // Table 4 claims.
    let xeons: Vec<_> = ["Sawtooth", "Eagle", "Manzano"]
        .iter()
        .map(|n| r.table4.iter().find(|x| &x.machine == n).expect("row"))
        .collect();
    claim(
        "Xeon systems: 13-16 GB/s single-core, 200-250 GB/s all-core",
        xeons
            .iter()
            .all(|x| (12.0..17.0).contains(&x.single.mean) && (190.0..260.0).contains(&x.all.mean)),
        xeons
            .iter()
            .map(|x| format!("{}: {:.1}/{:.1}", x.machine, x.single.mean, x.all.mean))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let trinity = r
        .table4
        .iter()
        .find(|x| x.machine == "Trinity")
        .expect("row");
    let theta = r.table4.iter().find(|x| x.machine == "Theta").expect("row");
    claim(
        "Theta underperforms Trinity substantially (memory and MPI)",
        theta.all.mean * 2.0 < trinity.all.mean
            && theta.on_socket.mean > 4.0 * trinity.on_socket.mean,
        format!(
            "all: {:.0} vs {:.0} GB/s; on-socket {:.2} vs {:.2} us",
            theta.all.mean, trinity.all.mean, theta.on_socket.mean, trinity.on_socket.mean
        ),
    );

    // Table 5 claims.
    claim(
        "V100 device bandwidth well below A100/MI250X (~1.3 TB/s)",
        ["Summit", "Sierra", "Lassen"].iter().all(|v| {
            ["Perlmutter", "Frontier"]
                .iter()
                .all(|f| t5(r, v).device_bw.mean * 1.4 < t5(r, f).device_bw.mean)
        }),
        format!(
            "Summit {:.0}, Perlmutter {:.0}, Frontier {:.0} GB/s",
            t5(r, "Summit").device_bw.mean,
            t5(r, "Perlmutter").device_bw.mean,
            t5(r, "Frontier").device_bw.mean
        ),
    );
    claim(
        "Host MPI latency sub-microsecond on all accelerator machines",
        r.table5.iter().all(|x| x.host_to_host.mean < 1.0),
        r.table5
            .iter()
            .map(|x| format!("{} {:.2}", x.machine, x.host_to_host.mean))
            .collect::<Vec<_>>()
            .join(", "),
    );
    claim(
        "Device MPI tiers: ~18-19 us V100, 10-14 us A100, sub-us MI250X",
        {
            let a = |n: &str| t5(r, n).d2d[&LinkClass::A].mean;
            (15.0..22.0).contains(&a("Summit"))
                && (9.0..16.0).contains(&a("Perlmutter"))
                && a("Frontier") < 1.0
        },
        format!(
            "Summit {:.1}, Perlmutter {:.1}, Frontier {:.2} us",
            t5(r, "Summit").d2d[&LinkClass::A].mean,
            t5(r, "Perlmutter").d2d[&LinkClass::A].mean,
            t5(r, "Frontier").d2d[&LinkClass::A].mean
        ),
    );
    claim(
        "All GPUs roughly equidistant on the MI250X machines",
        ["Frontier", "RZVernal", "Tioga"].iter().all(|n| {
            let means: Vec<f64> = t5(r, n).d2d.values().map(|s| s.mean).collect();
            let (lo, hi) = means
                .iter()
                .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            hi - lo < 0.3
        }),
        "max class spread < 0.3 us".to_string(),
    );

    // Table 6 claims.
    claim(
        "Kernel launch hierarchy: 4-5 us V100, 1.5-2.2 us A100/MI250X",
        ["Summit", "Sierra", "Lassen"]
            .iter()
            .all(|n| (3.8..5.3).contains(&t6(r, n).launch_us.mean))
            && ["Perlmutter", "Polaris", "Frontier", "RZVernal", "Tioga"]
                .iter()
                .all(|n| (1.2..2.5).contains(&t6(r, n).launch_us.mean)),
        format!(
            "Summit {:.2}, Perlmutter {:.2}, Frontier {:.2} us",
            t6(r, "Summit").launch_us.mean,
            t6(r, "Perlmutter").launch_us.mean,
            t6(r, "Frontier").launch_us.mean
        ),
    );
    claim(
        "H2D/D2H latency trend inverts: MI250X slowest, A100 fastest",
        {
            let hd = |n: &str| t6(r, n).hd_latency_us.mean;
            hd("Frontier") > hd("Summit") && hd("Summit") > hd("Perlmutter")
        },
        format!(
            "Frontier {:.1} > Summit {:.1} > Perlmutter {:.1} us",
            t6(r, "Frontier").hd_latency_us.mean,
            t6(r, "Summit").hd_latency_us.mean,
            t6(r, "Perlmutter").hd_latency_us.mean
        ),
    );
    claim(
        "V100 host bandwidth 40-60+ GB/s (NVLink); others ~25 GB/s (PCIe)",
        ["Summit", "Sierra", "Lassen"]
            .iter()
            .all(|n| t6(r, n).hd_bandwidth_gb_s.mean > 40.0)
            && ["Perlmutter", "Polaris", "Frontier"]
                .iter()
                .all(|n| (20.0..27.0).contains(&t6(r, n).hd_bandwidth_gb_s.mean)),
        format!(
            "Sierra {:.1}, Perlmutter {:.1} GB/s",
            t6(r, "Sierra").hd_bandwidth_gb_s.mean,
            t6(r, "Perlmutter").hd_bandwidth_gb_s.mean
        ),
    );
    claim(
        "Perlmutter vs Polaris: 2x D2D gap on identical hardware",
        t6(r, "Polaris").d2d_latency_us[&LinkClass::A].mean
            > 2.0 * t6(r, "Perlmutter").d2d_latency_us[&LinkClass::A].mean,
        format!(
            "Polaris {:.1} vs Perlmutter {:.1} us",
            t6(r, "Polaris").d2d_latency_us[&LinkClass::A].mean,
            t6(r, "Perlmutter").d2d_latency_us[&LinkClass::A].mean
        ),
    );
    claim(
        "Comm|Scope D2D much slower than OSU D2D on MI250X (memcpy vs RMA)",
        ["Frontier", "Tioga"].iter().all(|n| {
            t6(r, n).d2d_latency_us[&LinkClass::A].mean > 10.0 * t5(r, n).d2d[&LinkClass::A].mean
        }),
        format!(
            "Frontier: {:.1} vs {:.2} us",
            t6(r, "Frontier").d2d_latency_us[&LinkClass::A].mean,
            t5(r, "Frontier").d2d[&LinkClass::A].mean
        ),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_pass_on_a_quick_campaign() {
        let claims = run_checks(&Campaign::quick());
        assert!(claims.len() >= 10);
        for c in &claims {
            assert!(c.pass, "claim failed: {} ({})", c.name, c.detail);
        }
    }
}
