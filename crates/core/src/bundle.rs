//! Artifact-bundle writer: everything a released benchmark report ships.
//!
//! `doebench compare --outdir <dir>` regenerates the evaluation and writes
//! a self-contained directory: each table as CSV + Markdown, the node
//! diagrams as text and Graphviz, the paper-vs-measured report, and the
//! provenance manifest.

use std::io;
use std::path::Path;

use crate::experiments::Results;
use crate::{figures, table4, table5, table6, table7};

fn write(dir: &Path, name: &str, content: &str, written: &mut Vec<String>) -> io::Result<()> {
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    written.push(name.to_string());
    Ok(())
}

/// Write the full artifact bundle into `dir` (created if missing).
/// Returns the file names written, in order.
pub fn write_bundle(results: &Results, dir: &Path) -> io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();

    let t4 = table4::render(&results.table4);
    write(dir, "table4.csv", &t4.to_csv(), &mut written)?;
    write(dir, "table4.md", &t4.to_markdown(), &mut written)?;
    write(
        dir,
        "table4_compare.md",
        &table4::render_comparison(&results.table4).to_markdown(),
        &mut written,
    )?;

    let t5 = table5::render(&results.table5);
    write(dir, "table5.csv", &t5.to_csv(), &mut written)?;
    write(dir, "table5.md", &t5.to_markdown(), &mut written)?;
    write(
        dir,
        "table5_compare.md",
        &table5::render_comparison(&results.table5).to_markdown(),
        &mut written,
    )?;

    let t6 = table6::render(&results.table6);
    write(dir, "table6.csv", &t6.to_csv(), &mut written)?;
    write(dir, "table6.md", &t6.to_markdown(), &mut written)?;
    write(
        dir,
        "table6_compare.md",
        &table6::render_comparison(&results.table6).to_markdown(),
        &mut written,
    )?;

    let t7 = table7::render(&results.table7);
    write(dir, "table7.csv", &t7.to_csv(), &mut written)?;
    write(dir, "table7.md", &t7.to_markdown(), &mut written)?;

    for f in 1..=3u8 {
        if let Some(ascii) = figures::render_ascii(f) {
            write(dir, &format!("figure{f}.txt"), &ascii, &mut written)?;
        }
        if let Some(dot) = figures::render_dot(f) {
            write(dir, &format!("figure{f}.dot"), &dot, &mut written)?;
        }
    }

    write(
        dir,
        "report.md",
        &crate::experiments::render_markdown(results),
        &mut written,
    )?;
    write(
        dir,
        "manifest.md",
        &results.manifest.to_markdown(),
        &mut written,
    )?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{experiments, Campaign};

    #[test]
    fn bundle_writes_every_artifact() {
        let results = experiments::run_all(&Campaign::quick());
        let dir = std::env::temp_dir().join(format!("doebench-bundle-{}", std::process::id()));
        let written = write_bundle(&results, &dir).expect("bundle writes");
        // 11 table files + 6 figure files + report + manifest.
        assert_eq!(written.len(), 19, "{written:?}");
        for name in &written {
            let p = dir.join(name);
            let meta = std::fs::metadata(&p).expect("file exists");
            assert!(meta.len() > 0, "{name} is empty");
        }
        // Spot-check contents.
        let t5 = std::fs::read_to_string(dir.join("table5.csv")).expect("read");
        assert!(t5.lines().count() == 9); // header + 8 machines
        let fig = std::fs::read_to_string(dir.join("figure1.dot")).expect("read");
        assert!(fig.starts_with("graph"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
