//! Figures 1–3: node diagrams of the three accelerator node classes.

/// The machine whose node diagram each paper figure shows.
pub fn figure_machine(figure: u8) -> Option<&'static str> {
    match figure {
        1 => Some("Frontier"),   // shared by RZVernal and Tioga
        2 => Some("Summit"),     // shared by Sierra and Lassen (4 GPUs)
        3 => Some("Perlmutter"), // shared by Polaris
        _ => None,
    }
}

/// Render a figure as an ASCII node diagram.
pub fn render_ascii(figure: u8) -> Option<String> {
    let name = figure_machine(figure)?;
    let m = doe_machines::by_name(name)?;
    let mut out = format!(
        "Figure {figure}: {} node diagram (shared by {})\n\n",
        name,
        siblings(figure)
    );
    out.push_str(&m.topo.render_ascii());
    Some(out)
}

/// Render a figure as a Graphviz document.
pub fn render_dot(figure: u8) -> Option<String> {
    let name = figure_machine(figure)?;
    let m = doe_machines::by_name(name)?;
    Some(m.topo.render_dot())
}

fn siblings(figure: u8) -> &'static str {
    match figure {
        1 => "RZVernal, Tioga",
        2 => "Sierra, Lassen (4 GPUs/node)",
        3 => "Polaris",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_figures_render() {
        for f in 1..=3u8 {
            let s = render_ascii(f).expect("figure exists");
            assert!(s.contains(&format!("Figure {f}")));
            let dot = render_dot(f).expect("dot exists");
            assert!(dot.starts_with("graph"));
        }
        assert!(render_ascii(4).is_none());
        assert!(render_dot(0).is_none());
    }

    #[test]
    fn figure1_shows_infinity_fabric_classes() {
        let s = render_ascii(1).unwrap();
        assert!(s.contains("IF x4"));
        assert!(s.contains("IF x2"));
        assert!(s.contains("IF x1"));
        assert!(s.contains("A: "));
        assert!(s.contains("D: "));
    }

    #[test]
    fn figure2_shows_xbus_and_nvlink() {
        let s = render_ascii(2).unwrap();
        assert!(s.contains("X-Bus"));
        assert!(s.contains("NVLink2"));
    }

    #[test]
    fn figure3_shows_pcie_and_nvlink3() {
        let s = render_ascii(3).unwrap();
        assert!(s.contains("PCIe4 x16"));
        assert!(s.contains("NVLink3"));
    }
}
