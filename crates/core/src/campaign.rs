//! Campaign configuration: how much work each table regeneration does.

use doe_babelstream::SweepConfig;
use doe_commscope::CommScopeConfig;
use doe_osu::OsuConfig;

/// Top-level knob bundle for a full benchmarking campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// BabelStream sweep on CPU machines.
    pub stream_cpu: SweepConfig,
    /// BabelStream sweep on GPU machines.
    pub stream_gpu: SweepConfig,
    /// OSU point-to-point configuration (headline zero-byte points).
    pub osu: OsuConfig,
    /// Comm|Scope configuration.
    pub commscope: CommScopeConfig,
    /// Master seed; every (machine, benchmark, run) derives from it.
    pub seed: u64,
}

impl Campaign {
    /// The paper's protocol: 100 binary runs per benchmark, full sweeps.
    pub fn paper() -> Self {
        Campaign {
            stream_cpu: SweepConfig::paper_cpu(),
            stream_gpu: SweepConfig::paper_gpu(),
            osu: OsuConfig::table_point(),
            commscope: CommScopeConfig::paper(),
            seed: 0xD0E_2023,
        }
    }

    /// A reduced protocol for tests and smoke runs (same code paths,
    /// fewer repetitions and smaller sweeps).
    pub fn quick() -> Self {
        let mut osu = OsuConfig::quick();
        osu.sizes = vec![0];
        Campaign {
            stream_cpu: SweepConfig::quick(),
            stream_gpu: SweepConfig::quick(),
            osu,
            commscope: CommScopeConfig::quick(),
            seed: 0xD0E_2023,
        }
    }

    /// Derive a benchmark-specific seed.
    ///
    /// A 0xFF delimiter (never valid UTF-8, so it cannot occur in either
    /// string) is hashed between `machine` and `bench` so the pair is
    /// injective: without it `("ab", "c")` and `("a", "bc")` would hash
    /// the same byte stream and collide.
    pub fn seed_for(&self, machine: &str, bench: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0xCBF2_9CE4_8422_2325;
        let delimited = machine
            .bytes()
            .chain(std::iter::once(0xFF))
            .chain(bench.bytes());
        for b in delimited {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_uses_100_reps_everywhere() {
        let c = Campaign::paper();
        assert_eq!(c.stream_cpu.reps, 100);
        assert_eq!(c.stream_gpu.reps, 100);
        assert_eq!(c.osu.reps, 100);
        assert_eq!(c.commscope.reps, 100);
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        let q = Campaign::quick();
        let p = Campaign::paper();
        assert!(q.stream_cpu.reps < p.stream_cpu.reps);
        assert!(q.osu.sizes.len() <= p.osu.sizes.len());
    }

    #[test]
    fn seeds_differ_by_machine_and_bench() {
        let c = Campaign::paper();
        assert_ne!(c.seed_for("Frontier", "osu"), c.seed_for("Summit", "osu"));
        assert_ne!(
            c.seed_for("Frontier", "osu"),
            c.seed_for("Frontier", "stream")
        );
        assert_eq!(c.seed_for("Frontier", "osu"), c.seed_for("Frontier", "osu"));
    }

    #[test]
    fn split_point_distinguishes_seeds() {
        // Without a delimiter these two pairs hash the same byte stream.
        let c = Campaign::paper();
        assert_ne!(c.seed_for("ab", "c"), c.seed_for("a", "bc"));
        assert_ne!(c.seed_for("Crusher", "osu"), c.seed_for("Crushero", "su"));
        assert_ne!(c.seed_for("x", ""), c.seed_for("", "x"));
    }
}
