//! Table 7: min–max summary ranges per accelerator generation.
//!
//! Derived entirely from the Table 5 and Table 6 results, exactly as the
//! paper derives it ("we can summarize the results of Table 5 and Table 6
//! by providing ranges for all of the mean values reported in the
//! tables").

use doe_report::{CellValue, Table, TableResult, Unit};

use crate::{table5, table6};

/// The three accelerator generations of the study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Accelerator {
    /// Summit, Sierra, Lassen.
    V100,
    /// Perlmutter, Polaris.
    A100,
    /// Frontier, RZVernal, Tioga.
    Mi250x,
}

impl Accelerator {
    /// All generations in the paper's row order.
    pub const ALL: [Accelerator; 3] = [Accelerator::V100, Accelerator::A100, Accelerator::Mi250x];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Accelerator::V100 => "V100",
            Accelerator::A100 => "A100",
            Accelerator::Mi250x => "MI250X",
        }
    }

    /// Which generation a machine belongs to, by name.
    pub fn of_machine(name: &str) -> Option<Accelerator> {
        match name {
            "Summit" | "Sierra" | "Lassen" => Some(Accelerator::V100),
            "Perlmutter" | "Polaris" => Some(Accelerator::A100),
            "Frontier" | "RZVernal" | "Tioga" => Some(Accelerator::Mi250x),
            _ => None,
        }
    }
}

/// A `min–max` range over machine means.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Range {
    /// Smallest mean in the group.
    pub min: f64,
    /// Largest mean in the group.
    pub max: f64,
}

impl Range {
    fn from_values(values: impl IntoIterator<Item = f64>) -> Option<Range> {
        let mut it = values.into_iter();
        let first = it.next()?;
        let mut r = Range {
            min: first,
            max: first,
        };
        for v in it {
            r.min = r.min.min(v);
            r.max = r.max.max(v);
        }
        Some(r)
    }

    /// `"min-max"` with two decimals, like the paper's cells.
    pub fn cell(&self) -> String {
        format!("{:.2}-{:.2}", self.min, self.max)
    }
}

/// One regenerated row of Table 7.
#[derive(Clone, Debug)]
pub struct Row {
    /// Generation.
    pub accelerator: Accelerator,
    /// Device memory bandwidth range, GB/s.
    pub memory_bw: Range,
    /// Device MPI latency range, µs (all classes pooled).
    pub mpi_latency: Range,
    /// Kernel launch latency range, µs.
    pub kernel_launch: Range,
    /// Kernel wait latency range, µs.
    pub kernel_wait: Range,
    /// H2D/D2H latency range, µs.
    pub hd_latency: Range,
    /// H2D/D2H bandwidth range, GB/s.
    pub hd_bandwidth: Range,
    /// Device-to-device copy latency range, µs (all classes pooled).
    pub d2d_latency: Range,
}

/// Aggregate Table 5 + Table 6 rows into Table 7's ranges.
pub fn summarize(t5: &[table5::Row], t6: &[table6::Row]) -> Vec<Row> {
    Accelerator::ALL
        .iter()
        .filter_map(|&acc| {
            let in5: Vec<&table5::Row> = t5
                .iter()
                .filter(|r| Accelerator::of_machine(&r.machine) == Some(acc))
                .collect();
            let in6: Vec<&table6::Row> = t6
                .iter()
                .filter(|r| Accelerator::of_machine(&r.machine) == Some(acc))
                .collect();
            if in5.is_empty() || in6.is_empty() {
                return None;
            }
            Some(Row {
                accelerator: acc,
                memory_bw: Range::from_values(in5.iter().map(|r| r.device_bw.mean))?,
                mpi_latency: Range::from_values(
                    in5.iter().flat_map(|r| r.d2d.values().map(|s| s.mean)),
                )?,
                kernel_launch: Range::from_values(in6.iter().map(|r| r.launch_us.mean))?,
                kernel_wait: Range::from_values(in6.iter().map(|r| r.wait_us.mean))?,
                hd_latency: Range::from_values(in6.iter().map(|r| r.hd_latency_us.mean))?,
                hd_bandwidth: Range::from_values(in6.iter().map(|r| r.hd_bandwidth_gb_s.mean))?,
                d2d_latency: Range::from_values(
                    in6.iter()
                        .flat_map(|r| r.d2d_latency_us.values().map(|s| s.mean)),
                )?,
            })
        })
        .collect()
}

/// Run Tables 5 and 6 and summarize (convenience for the bench/CLI).
pub fn run(c: &crate::Campaign) -> Vec<Row> {
    let t5 = table5::run(c);
    let t6 = table6::run(c);
    summarize(&t5, &t6)
}

impl Range {
    fn value(&self) -> CellValue {
        CellValue::Range {
            min: self.min,
            max: self.max,
        }
    }
}

/// Assemble rows into the structured table (the paper's layout, typed).
pub fn result(rows: &[Row]) -> TableResult {
    let mut t = TableResult::new(
        "table7",
        "Table 7: min-max ranges across accelerator generations",
    );
    t.push_column("Accelerator", Unit::None);
    t.push_column("Memory BW", Unit::GbPerS);
    t.push_column("MPI Lat.", Unit::Micros);
    t.push_column("Kernel Launch", Unit::Micros);
    t.push_column("Kernel Wait", Unit::Micros);
    t.push_column("H2D/D2H Lat.", Unit::Micros);
    t.push_column("H2D/D2H BW", Unit::GbPerS);
    t.push_column("D2D Lat.", Unit::Micros);
    for r in rows {
        t.push_row(
            None,
            vec![
                CellValue::Text(r.accelerator.label().to_string()),
                r.memory_bw.value(),
                r.mpi_latency.value(),
                r.kernel_launch.value(),
                r.kernel_wait.value(),
                r.hd_latency.value(),
                r.hd_bandwidth.value(),
                r.d2d_latency.value(),
            ],
        );
    }
    t
}

/// Render rows in the paper's layout (legacy string-table view of
/// [`result`]; byte-identical output).
pub fn render(rows: &[Row]) -> Table {
    result(rows).to_table()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;

    #[test]
    fn machine_grouping() {
        assert_eq!(Accelerator::of_machine("Summit"), Some(Accelerator::V100));
        assert_eq!(Accelerator::of_machine("Polaris"), Some(Accelerator::A100));
        assert_eq!(Accelerator::of_machine("Tioga"), Some(Accelerator::Mi250x));
        assert_eq!(Accelerator::of_machine("Eagle"), None);
    }

    #[test]
    fn range_cell_format() {
        let r = Range {
            min: 0.44,
            max: 0.5,
        };
        assert_eq!(r.cell(), "0.44-0.50");
    }

    #[test]
    fn summarize_pools_classes_and_machines() {
        // Two MI250X machines suffice to exercise the pooling logic.
        let c = Campaign::quick();
        let machines: Vec<_> = ["Frontier", "RZVernal"]
            .iter()
            .map(|n| doe_machines::by_name(n).unwrap())
            .collect();
        let t5: Vec<_> = machines
            .iter()
            .map(|m| table5::run_machine(m, &c))
            .collect();
        let t6: Vec<_> = machines
            .iter()
            .map(|m| table6::run_machine(m, &c))
            .collect();
        let rows = summarize(&t5, &t6);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.accelerator, Accelerator::Mi250x);
        assert!(r.memory_bw.min <= r.memory_bw.max);
        // The MI250X hallmarks: sub-us device MPI, ~10-13 us D2D copies.
        assert!(r.mpi_latency.max < 1.0);
        assert!(r.d2d_latency.min > 5.0);
        assert!(render(&rows).to_ascii().contains("MI250X"));
    }
}
