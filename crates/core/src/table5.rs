//! Table 5: device memory bandwidth and MPI latencies on accelerator
//! machines.

use std::collections::BTreeMap;
use std::sync::Arc;

use doe_babelstream::run_sim_gpu;
use doe_benchlib::Summary;
use doe_machines::{paper, Machine};
use doe_osu::{on_socket_pair, osu_latency, osu_latency_device};
use doe_report::CellValue;
use doe_report::{Comparison, Table, TableResult, Unit};
use doe_topo::{CoreId, DeviceId, LinkClass, NodeTopology};

use crate::campaign::Campaign;
use crate::sched::run_cells;

/// One regenerated row of Table 5.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"<rank>. <name>"`.
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// Device memory bandwidth (BabelStream best kernel), GB/s.
    pub device_bw: Summary,
    /// The "Peak" citation string.
    pub peak: &'static str,
    /// Host-to-host MPI latency, µs.
    pub host_to_host: Summary,
    /// Device-to-device MPI latency per link class.
    pub d2d: BTreeMap<LinkClass, Summary>,
}

/// The MPI ranks for a device pair sit on cores local to each device, one
/// rank per accelerator — the paper's stated DOE application convention.
pub fn device_pair_cores(topo: &NodeTopology, da: DeviceId, db: DeviceId) -> (CoreId, CoreId) {
    let na = topo.device(da).expect("device a").local_numa;
    let nb = topo.device(db).expect("device b").local_numa;
    let cores_a = topo.cores_of_numa(na);
    let cores_b = topo.cores_of_numa(nb);
    let ca = cores_a[0];
    let cb = if na == nb { cores_b[1] } else { cores_b[0] };
    (ca, cb)
}

/// The BabelStream GPU cell of one row.
fn stream_cell(m: &Machine, c: &Campaign) -> Summary {
    run_sim_gpu(
        Arc::clone(&m.topo),
        &m.gpu_models,
        c.seed_for(m.name, "babelstream-gpu"),
        &c.stream_gpu,
    )
    .device
}

/// The host-to-host OSU latency cell of one row.
fn h2h_cell(m: &Machine, c: &Campaign) -> Summary {
    let socket_pair = on_socket_pair(&m.topo).expect("machine has >= 2 cores");
    osu_latency(
        &m.topo,
        &m.mpi,
        socket_pair,
        &c.osu,
        c.seed_for(m.name, "osu-h2h"),
    )
    .remove(0)
    .one_way_us
}

/// One device-to-device OSU latency cell.
fn d2d_cell(m: &Machine, c: &Campaign, class: LinkClass, da: DeviceId, db: DeviceId) -> Summary {
    let cores = device_pair_cores(&m.topo, da, db);
    osu_latency_device(
        &m.topo,
        &m.mpi,
        cores,
        (da, db),
        &c.osu,
        c.seed_for(m.name, &format!("osu-d2d-{class}")),
    )
    .remove(0)
    .one_way_us
}

/// Run the Table 5 benchmarks for one GPU machine.
pub fn run_machine(m: &Machine, c: &Campaign) -> Row {
    assert!(m.is_accelerated(), "Table 5 covers accelerator machines");
    let mut d2d = BTreeMap::new();
    for (class, (da, db)) in m.topo.representative_pairs() {
        d2d.insert(class, d2d_cell(m, c, class, da, db));
    }
    Row {
        label: m.table_label(),
        machine: m.name.to_string(),
        device_bw: stream_cell(m, c),
        peak: m.device_peak_citation.unwrap_or("-"),
        host_to_host: h2h_cell(m, c),
        d2d,
    }
}

/// One cell of the (machine × benchmark) grid.
enum CellKind {
    Stream,
    HostToHost,
    D2d(LinkClass, DeviceId, DeviceId),
}

/// Run all GPU machines: the (machine × cell) grid — stream, host-to-host
/// latency, and one cell per represented link class — fans out over the
/// worker pool, and rows assemble in canonical machine order.
pub fn run(c: &Campaign) -> Vec<Row> {
    let machines = doe_machines::gpu_machines();
    let mut grid: Vec<(usize, CellKind)> = Vec::new();
    for (mi, m) in machines.iter().enumerate() {
        grid.push((mi, CellKind::Stream));
        grid.push((mi, CellKind::HostToHost));
        for (class, (da, db)) in m.topo.representative_pairs() {
            grid.push((mi, CellKind::D2d(class, da, db)));
        }
    }
    let results = run_cells(&grid, |&(mi, ref kind)| {
        let m = &machines[mi];
        match *kind {
            CellKind::Stream => stream_cell(m, c),
            CellKind::HostToHost => h2h_cell(m, c),
            CellKind::D2d(class, da, db) => d2d_cell(m, c, class, da, db),
        }
    });
    #[derive(Default)]
    struct Partial {
        device_bw: Option<Summary>,
        host_to_host: Option<Summary>,
        d2d: BTreeMap<LinkClass, Summary>,
    }
    let mut partials: Vec<Partial> = machines.iter().map(|_| Partial::default()).collect();
    for (&(mi, ref kind), summary) in grid.iter().zip(results) {
        let p = &mut partials[mi];
        match *kind {
            CellKind::Stream => p.device_bw = Some(summary),
            CellKind::HostToHost => p.host_to_host = Some(summary),
            CellKind::D2d(class, _, _) => {
                p.d2d.insert(class, summary);
            }
        }
    }
    machines
        .iter()
        .zip(partials)
        .map(|(m, p)| Row {
            label: m.table_label(),
            machine: m.name.to_string(),
            device_bw: p.device_bw.expect("one stream cell per machine"),
            peak: m.device_peak_citation.unwrap_or("-"),
            host_to_host: p.host_to_host.expect("one h2h cell per machine"),
            d2d: p.d2d,
        })
        .collect()
}

fn class_cell(r: &BTreeMap<LinkClass, Summary>, class: LinkClass) -> CellValue {
    r.get(&class)
        .map(|s| CellValue::Stat(*s))
        .unwrap_or(CellValue::Missing)
}

/// Assemble rows into the structured table (the paper's layout, typed).
pub fn result(rows: &[Row]) -> TableResult {
    let mut t = TableResult::new(
        "table5",
        "Table 5: device bandwidth (GB/s) and MPI latency (us), accelerator systems",
    );
    t.push_column("Rank/Name", Unit::None);
    t.push_column("Device", Unit::GbPerS);
    t.push_column("Peak", Unit::GbPerS);
    t.push_column("Host-to-Host", Unit::Micros);
    for class in ["A", "B", "C", "D"] {
        t.push_column(class, Unit::Micros);
    }
    for r in rows {
        t.push_row(
            Some(&r.machine),
            vec![
                CellValue::Text(r.label.clone()),
                CellValue::Stat(r.device_bw),
                CellValue::Text(r.peak.to_string()),
                CellValue::Stat(r.host_to_host),
                class_cell(&r.d2d, LinkClass::A),
                class_cell(&r.d2d, LinkClass::B),
                class_cell(&r.d2d, LinkClass::C),
                class_cell(&r.d2d, LinkClass::D),
            ],
        );
    }
    t
}

/// Render rows in the paper's layout (legacy string-table view of
/// [`result`]; byte-identical output).
pub fn render(rows: &[Row]) -> Table {
    result(rows).to_table()
}

/// Render a paper-vs-measured comparison of the means.
pub fn render_comparison(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 5 (paper -> measured)",
        &["Rank/Name", "Device", "Host-to-Host", "A", "B", "C", "D"],
    );
    for r in rows {
        let Some(p) = paper::table5_row(&r.machine) else {
            continue;
        };
        let cmp_class = |i: usize, class: LinkClass| -> String {
            match (p.d2d[i], r.d2d.get(&class)) {
                (Some((mean, _)), Some(s)) => Comparison::new(mean, s.mean).to_string(),
                _ => String::new(),
            }
        };
        t.push_row(vec![
            r.label.clone(),
            Comparison::new(p.device_bw.0, r.device_bw.mean).to_string(),
            Comparison::new(p.host_to_host.0, r.host_to_host.mean).to_string(),
            cmp_class(0, LinkClass::A),
            cmp_class(1, LinkClass::B),
            cmp_class(2, LinkClass::C),
            cmp_class(3, LinkClass::D),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_row_shape_matches_paper() {
        let m = doe_machines::by_name("Frontier").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        // Bandwidth within 10% of the paper on the quick sweep's smaller
        // vectors.
        assert!(
            (row.device_bw.mean - 1336.35).abs() / 1336.35 < 0.10,
            "bw={}",
            row.device_bw.mean
        );
        // Sub-microsecond MPI everywhere, roughly class-flat.
        assert!(row.host_to_host.mean < 1.0);
        assert_eq!(row.d2d.len(), 4);
        for (class, s) in &row.d2d {
            assert!(s.mean < 1.0, "{class}: {}", s.mean);
        }
    }

    #[test]
    fn summit_device_mpi_is_tens_of_microseconds() {
        let m = doe_machines::by_name("Summit").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        assert_eq!(row.d2d.len(), 2);
        let a = row.d2d.get(&LinkClass::A).unwrap().mean;
        let b = row.d2d.get(&LinkClass::B).unwrap().mean;
        assert!((a - 18.10).abs() < 1.5, "A={a}");
        assert!(b > a, "B={b} should exceed A={a}");
    }

    #[test]
    fn device_pair_cores_are_device_local() {
        let m = doe_machines::by_name("Summit").unwrap();
        let (ca, cb) = device_pair_cores(&m.topo, DeviceId(0), DeviceId(3));
        assert_ne!(
            m.topo.numa_of_core(ca).unwrap(),
            m.topo.numa_of_core(cb).unwrap()
        );
        let (ca, cb) = device_pair_cores(&m.topo, DeviceId(0), DeviceId(1));
        assert_eq!(
            m.topo.numa_of_core(ca).unwrap(),
            m.topo.numa_of_core(cb).unwrap()
        );
        assert_ne!(ca, cb);
    }

    #[test]
    fn render_includes_class_columns() {
        let m = doe_machines::by_name("Polaris").unwrap();
        let rows = vec![run_machine(&m, &Campaign::quick())];
        let t = render(&rows);
        assert_eq!(t.headers.len(), 8);
        let ascii = t.to_ascii();
        assert!(ascii.contains("19. Polaris"));
        let cmp = render_comparison(&rows);
        assert!(!cmp.rows.is_empty());
    }
}
