//! Table 5: device memory bandwidth and MPI latencies on accelerator
//! machines.

use std::collections::BTreeMap;
use std::sync::Arc;

use doe_babelstream::run_sim_gpu;
use doe_benchlib::Summary;
use doe_machines::{paper, Machine};
use doe_osu::{on_socket_pair, osu_latency, osu_latency_device};
use doe_report::{pm_summary, Comparison, Table};
use doe_topo::{CoreId, DeviceId, LinkClass, NodeTopology};

use crate::campaign::Campaign;

/// One regenerated row of Table 5.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"<rank>. <name>"`.
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// Device memory bandwidth (BabelStream best kernel), GB/s.
    pub device_bw: Summary,
    /// The "Peak" citation string.
    pub peak: &'static str,
    /// Host-to-host MPI latency, µs.
    pub host_to_host: Summary,
    /// Device-to-device MPI latency per link class.
    pub d2d: BTreeMap<LinkClass, Summary>,
}

/// The MPI ranks for a device pair sit on cores local to each device, one
/// rank per accelerator — the paper's stated DOE application convention.
pub fn device_pair_cores(topo: &NodeTopology, da: DeviceId, db: DeviceId) -> (CoreId, CoreId) {
    let na = topo.device(da).expect("device a").local_numa;
    let nb = topo.device(db).expect("device b").local_numa;
    let cores_a = topo.cores_of_numa(na);
    let cores_b = topo.cores_of_numa(nb);
    let ca = cores_a[0];
    let cb = if na == nb { cores_b[1] } else { cores_b[0] };
    (ca, cb)
}

/// Run the Table 5 benchmarks for one GPU machine.
pub fn run_machine(m: &Machine, c: &Campaign) -> Row {
    assert!(m.is_accelerated(), "Table 5 covers accelerator machines");
    let topo = Arc::clone(&m.topo);
    let stream = run_sim_gpu(
        Arc::clone(&topo),
        &m.gpu_models,
        c.seed_for(m.name, "babelstream-gpu"),
        &c.stream_gpu,
    );
    let socket_pair = on_socket_pair(&topo).expect("machine has >= 2 cores");
    let host_to_host = osu_latency(
        &topo,
        &m.mpi,
        socket_pair,
        &c.osu,
        c.seed_for(m.name, "osu-h2h"),
    )
    .remove(0)
    .one_way_us;
    let mut d2d = BTreeMap::new();
    for (class, (da, db)) in topo.representative_pairs() {
        let cores = device_pair_cores(&topo, da, db);
        let lat = osu_latency_device(
            &topo,
            &m.mpi,
            cores,
            (da, db),
            &c.osu,
            c.seed_for(m.name, &format!("osu-d2d-{class}")),
        )
        .remove(0)
        .one_way_us;
        d2d.insert(class, lat);
    }
    Row {
        label: m.table_label(),
        machine: m.name.to_string(),
        device_bw: stream.device,
        peak: m.device_peak_citation.unwrap_or("-"),
        host_to_host,
        d2d,
    }
}

/// Run all GPU machines.
pub fn run(c: &Campaign) -> Vec<Row> {
    doe_machines::gpu_machines()
        .iter()
        .map(|m| run_machine(m, c))
        .collect()
}

fn class_cell(r: &BTreeMap<LinkClass, Summary>, class: LinkClass) -> String {
    r.get(&class).map(pm_summary).unwrap_or_default()
}

/// Render rows in the paper's layout.
pub fn render(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 5: device bandwidth (GB/s) and MPI latency (us), accelerator systems",
        &[
            "Rank/Name",
            "Device",
            "Peak",
            "Host-to-Host",
            "A",
            "B",
            "C",
            "D",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            pm_summary(&r.device_bw),
            r.peak.to_string(),
            pm_summary(&r.host_to_host),
            class_cell(&r.d2d, LinkClass::A),
            class_cell(&r.d2d, LinkClass::B),
            class_cell(&r.d2d, LinkClass::C),
            class_cell(&r.d2d, LinkClass::D),
        ]);
    }
    t
}

/// Render a paper-vs-measured comparison of the means.
pub fn render_comparison(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 5 (paper -> measured)",
        &["Rank/Name", "Device", "Host-to-Host", "A", "B", "C", "D"],
    );
    for r in rows {
        let Some(p) = paper::table5_row(&r.machine) else {
            continue;
        };
        let cmp_class = |i: usize, class: LinkClass| -> String {
            match (p.d2d[i], r.d2d.get(&class)) {
                (Some((mean, _)), Some(s)) => Comparison::new(mean, s.mean).to_string(),
                _ => String::new(),
            }
        };
        t.push_row(vec![
            r.label.clone(),
            Comparison::new(p.device_bw.0, r.device_bw.mean).to_string(),
            Comparison::new(p.host_to_host.0, r.host_to_host.mean).to_string(),
            cmp_class(0, LinkClass::A),
            cmp_class(1, LinkClass::B),
            cmp_class(2, LinkClass::C),
            cmp_class(3, LinkClass::D),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_row_shape_matches_paper() {
        let m = doe_machines::by_name("Frontier").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        // Bandwidth within 10% of the paper on the quick sweep's smaller
        // vectors.
        assert!(
            (row.device_bw.mean - 1336.35).abs() / 1336.35 < 0.10,
            "bw={}",
            row.device_bw.mean
        );
        // Sub-microsecond MPI everywhere, roughly class-flat.
        assert!(row.host_to_host.mean < 1.0);
        assert_eq!(row.d2d.len(), 4);
        for (class, s) in &row.d2d {
            assert!(s.mean < 1.0, "{class}: {}", s.mean);
        }
    }

    #[test]
    fn summit_device_mpi_is_tens_of_microseconds() {
        let m = doe_machines::by_name("Summit").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        assert_eq!(row.d2d.len(), 2);
        let a = row.d2d.get(&LinkClass::A).unwrap().mean;
        let b = row.d2d.get(&LinkClass::B).unwrap().mean;
        assert!((a - 18.10).abs() < 1.5, "A={a}");
        assert!(b > a, "B={b} should exceed A={a}");
    }

    #[test]
    fn device_pair_cores_are_device_local() {
        let m = doe_machines::by_name("Summit").unwrap();
        let (ca, cb) = device_pair_cores(&m.topo, DeviceId(0), DeviceId(3));
        assert_ne!(
            m.topo.numa_of_core(ca).unwrap(),
            m.topo.numa_of_core(cb).unwrap()
        );
        let (ca, cb) = device_pair_cores(&m.topo, DeviceId(0), DeviceId(1));
        assert_eq!(
            m.topo.numa_of_core(ca).unwrap(),
            m.topo.numa_of_core(cb).unwrap()
        );
        assert_ne!(ca, cb);
    }

    #[test]
    fn render_includes_class_columns() {
        let m = doe_machines::by_name("Polaris").unwrap();
        let rows = vec![run_machine(&m, &Campaign::quick())];
        let t = render(&rows);
        assert_eq!(t.headers.len(), 8);
        let ascii = t.to_ascii();
        assert!(ascii.contains("19. Polaris"));
        let cmp = render_comparison(&rows);
        assert!(!cmp.rows.is_empty());
    }
}
