//! `doebench` — latency and bandwidth microbenchmarks of the US DOE
//! systems in the June 2023 Top500 list, reproduced in Rust.
//!
//! This is the umbrella crate of the suite: it orchestrates the three
//! benchmark families (BabelStream, OSU point-to-point, Comm|Scope) over
//! the 13 machine models and regenerates every table and figure of the
//! paper (Siefert et al., SC-W 2023, DOI 10.1145/3624062.3624203).
//!
//! # Quick start
//!
//! ```
//! use doebench::{Campaign, table6};
//!
//! // A reduced campaign (fast); Campaign::paper() runs the full
//! // 100-repetition protocol.
//! let campaign = Campaign::quick();
//! let frontier = doe_machines::by_name("Frontier").unwrap();
//! let row = table6::run_machine(&frontier, &campaign);
//! // Kernel launch latency on Frontier is ~1.5 µs in the paper.
//! assert!(row.launch_us.mean > 0.5 && row.launch_us.mean < 3.0);
//! ```
//!
//! # Layout
//!
//! * [`table4`] — CPU machines: memory bandwidth + MPI latency
//! * [`table5`] — GPU machines: device bandwidth + MPI latencies
//! * [`table6`] — GPU machines: Comm|Scope kernel/copy costs
//! * [`table7`] — min–max summary per accelerator generation
//! * [`figures`] — node diagrams (Figures 1–3)
//! * [`experiments`] — paper-vs-measured comparison report
//!
//! The individual benchmark crates are re-exported under their own names
//! for direct use ([`babelstream`], [`osu`], [`commscope`], …).

pub mod bundle;
pub mod campaign;
pub mod experiments;
pub mod explain;
pub mod figures;
pub mod query;
pub mod sched;
pub mod studies;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod verify;

pub use campaign::Campaign;

pub use dessan;
pub use doe_babelstream as babelstream;
pub use doe_benchlib as benchlib;
pub use doe_commscope as commscope;
pub use doe_gpurt as gpurt;
pub use doe_gpusim as gpusim;
pub use doe_machines as machines;
pub use doe_memmodel as memmodel;
pub use doe_mpi as mpi;
pub use doe_net as net;
pub use doe_omp as omp;
pub use doe_osu as osu;
pub use doe_report as report;
pub use doe_simtime as simtime;
pub use doe_topo as topo;
