//! Table 4: memory bandwidth and MPI latency on non-accelerator machines.

use doe_babelstream::{run_sim_cpu, CpuStreamReport};
use doe_benchlib::Summary;
use doe_machines::{paper, Machine};
use doe_osu::{on_node_pair, on_socket_pair, osu_latency};
use doe_report::{CellValue, Comparison, Table, TableResult, Unit};

use crate::campaign::Campaign;
use crate::sched::run_cells;

/// One regenerated row of Table 4.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"<rank>. <name>"`.
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// Single-thread memory bandwidth, GB/s.
    pub single: Summary,
    /// All-thread memory bandwidth, GB/s.
    pub all: Summary,
    /// The "Peak" citation string.
    pub peak: &'static str,
    /// On-socket MPI latency, µs.
    pub on_socket: Summary,
    /// On-node MPI latency, µs.
    pub on_node: Summary,
}

/// The BabelStream cell of one row.
fn stream_cell(m: &Machine, c: &Campaign) -> CpuStreamReport {
    run_sim_cpu(
        &m.topo,
        &m.host_mem,
        m.host_stream_jitter,
        c.seed_for(m.name, "babelstream"),
        &c.stream_cpu,
    )
}

/// One OSU latency cell: the pair layout names the bench for seeding.
fn latency_cell(m: &Machine, c: &Campaign, bench: &str) -> Summary {
    let cores = match bench {
        "osu-socket" => on_socket_pair(&m.topo),
        "osu-node" => on_node_pair(&m.topo),
        _ => unreachable!("table 4 latency cells"),
    }
    .expect("machine has >= 2 cores");
    osu_latency(&m.topo, &m.mpi, cores, &c.osu, c.seed_for(m.name, bench))
        .remove(0)
        .one_way_us
}

/// Run the Table 4 benchmarks for one CPU machine.
pub fn run_machine(m: &Machine, c: &Campaign) -> Row {
    assert!(!m.is_accelerated(), "Table 4 covers CPU machines");
    let stream = stream_cell(m, c);
    Row {
        label: m.table_label(),
        machine: m.name.to_string(),
        single: stream.single,
        all: stream.all,
        peak: m.host_peak_citation,
        on_socket: latency_cell(m, c, "osu-socket"),
        on_node: latency_cell(m, c, "osu-node"),
    }
}

/// Per-cell results, reassembled into a row after the grid runs.
enum Cell {
    Stream(CpuStreamReport),
    Latency(Summary),
}

/// Run all CPU machines: the (machine × cell) grid fans out over the
/// worker pool, and rows assemble in canonical machine order.
pub fn run(c: &Campaign) -> Vec<Row> {
    let machines = doe_machines::cpu_machines();
    let grid: Vec<(usize, &str)> = (0..machines.len())
        .flat_map(|mi| {
            ["babelstream", "osu-socket", "osu-node"]
                .into_iter()
                .map(move |bench| (mi, bench))
        })
        .collect();
    let mut results = run_cells(&grid, |&(mi, bench)| {
        let m = &machines[mi];
        match bench {
            "babelstream" => Cell::Stream(stream_cell(m, c)),
            _ => Cell::Latency(latency_cell(m, c, bench)),
        }
    })
    .into_iter();
    machines
        .iter()
        .map(|m| {
            let (
                Some(Cell::Stream(stream)),
                Some(Cell::Latency(on_socket)),
                Some(Cell::Latency(on_node)),
            ) = (results.next(), results.next(), results.next())
            else {
                unreachable!("three cells per machine, in order");
            };
            Row {
                label: m.table_label(),
                machine: m.name.to_string(),
                single: stream.single,
                all: stream.all,
                peak: m.host_peak_citation,
                on_socket,
                on_node,
            }
        })
        .collect()
}

/// Assemble rows into the structured table (the paper's layout, typed).
pub fn result(rows: &[Row]) -> TableResult {
    let mut t = TableResult::new(
        "table4",
        "Table 4: memory bandwidth (GB/s) and MPI latency (us), non-accelerator systems",
    );
    t.push_column("Rank/Name", Unit::None);
    t.push_column("Single", Unit::GbPerS);
    t.push_column("All", Unit::GbPerS);
    t.push_column("Peak", Unit::GbPerS);
    t.push_column("On-Socket", Unit::Micros);
    t.push_column("On-Node", Unit::Micros);
    for r in rows {
        t.push_row(
            Some(&r.machine),
            vec![
                CellValue::Text(r.label.clone()),
                CellValue::Stat(r.single),
                CellValue::Stat(r.all),
                CellValue::Text(r.peak.to_string()),
                CellValue::Stat(r.on_socket),
                CellValue::Stat(r.on_node),
            ],
        );
    }
    t
}

/// Render rows in the paper's layout (legacy string-table view of
/// [`result`]; byte-identical output).
pub fn render(rows: &[Row]) -> Table {
    result(rows).to_table()
}

/// Render a paper-vs-measured comparison of the means.
pub fn render_comparison(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 4 (paper -> measured)",
        &["Rank/Name", "Single", "All", "On-Socket", "On-Node"],
    );
    for r in rows {
        if let Some(p) = paper::table4_row(&r.machine) {
            t.push_row(vec![
                r.label.clone(),
                Comparison::new(p.single.0, r.single.mean).to_string(),
                Comparison::new(p.all.0, r.all.mean).to_string(),
                Comparison::new(p.on_socket.0, r.on_socket.mean).to_string(),
                Comparison::new(p.on_node.0, r.on_node.mean).to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eagle_row_lands_near_paper_values() {
        let m = doe_machines::by_name("Eagle").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        assert!(
            (row.single.mean - 13.45).abs() < 1.0,
            "single={}",
            row.single.mean
        );
        assert!((row.all.mean - 208.24).abs() < 12.0, "all={}", row.all.mean);
        assert!(
            (row.on_socket.mean - 0.17).abs() < 0.03,
            "sock={}",
            row.on_socket.mean
        );
        assert!(
            (row.on_node.mean - 0.38).abs() < 0.05,
            "node={}",
            row.on_node.mean
        );
    }

    #[test]
    fn render_produces_five_machine_rows() {
        let m = doe_machines::by_name("Manzano").unwrap();
        let rows = vec![run_machine(&m, &Campaign::quick())];
        let t = render(&rows);
        assert_eq!(t.headers.len(), 6);
        assert!(t.to_ascii().contains("141. Manzano"));
        let cmp = render_comparison(&rows);
        assert!(cmp.to_ascii().contains("->") || cmp.to_ascii().contains("→"));
    }

    #[test]
    #[should_panic(expected = "Table 4 covers CPU machines")]
    fn gpu_machine_rejected() {
        let m = doe_machines::by_name("Frontier").unwrap();
        run_machine(&m, &Campaign::quick());
    }
}
