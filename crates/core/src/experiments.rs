//! Full paper-vs-measured experiment report (the source of EXPERIMENTS.md).
//!
//! dessan::allow(wall-clock): reports its own real elapsed wall time alongside simulated results.

use std::fmt::Write as _;
use std::time::Instant;

use crate::campaign::Campaign;
use crate::{table4, table5, table6, table7};

/// Provenance of a campaign run: what executed, under which protocol, and
/// how long each phase took — the reproducibility record a release would
/// publish alongside its tables.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// The crate version that produced the results.
    pub suite_version: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Outer repetitions per benchmark (the paper's "100 binary runs").
    pub reps: (usize, usize, usize, usize),
    /// Wall-clock seconds per table (4, 5, 6).
    pub wall_secs: (f64, f64, f64),
}

impl Manifest {
    /// Render as a Markdown provenance block.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Provenance\n");
        let _ = writeln!(out, "* suite version: `{}`", self.suite_version);
        let _ = writeln!(out, "* master seed: `{:#x}`", self.seed);
        let _ = writeln!(
            out,
            "* repetitions: stream-cpu {}, stream-gpu {}, osu {}, commscope {}",
            self.reps.0, self.reps.1, self.reps.2, self.reps.3
        );
        let _ = writeln!(
            out,
            "* wall time: table4 {:.1}s, table5 {:.1}s, table6 {:.1}s",
            self.wall_secs.0, self.wall_secs.1, self.wall_secs.2
        );
        out
    }
}

/// All regenerated results for the paper's evaluation section.
#[derive(Clone, Debug)]
pub struct Results {
    /// Table 4 rows (CPU machines).
    pub table4: Vec<table4::Row>,
    /// Table 5 rows (GPU machines).
    pub table5: Vec<table5::Row>,
    /// Table 6 rows (GPU machines).
    pub table6: Vec<table6::Row>,
    /// Table 7 summary rows.
    pub table7: Vec<table7::Row>,
    /// Provenance record.
    pub manifest: Manifest,
}

/// Run every experiment in the paper's evaluation section.
pub fn run_all(c: &Campaign) -> Results {
    let t0 = Instant::now();
    let table4 = table4::run(c);
    let t1 = Instant::now();
    let table5 = table5::run(c);
    let t2 = Instant::now();
    let table6 = table6::run(c);
    let t3 = Instant::now();
    let table7 = table7::summarize(&table5, &table6);
    let manifest = Manifest {
        suite_version: env!("CARGO_PKG_VERSION"),
        seed: c.seed,
        reps: (
            c.stream_cpu.reps,
            c.stream_gpu.reps,
            c.osu.reps,
            c.commscope.reps,
        ),
        wall_secs: (
            (t1 - t0).as_secs_f64(),
            (t2 - t1).as_secs_f64(),
            (t3 - t2).as_secs_f64(),
        ),
    };
    Results {
        table4,
        table5,
        table6,
        table7,
        manifest,
    }
}

/// Render the full Markdown report: each regenerated table followed by its
/// paper-vs-measured comparison.
pub fn render_markdown(r: &Results) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Regenerated evaluation (paper vs. measured)\n");
    let _ = writeln!(out, "{}", table4::render(&r.table4).to_markdown());
    let _ = writeln!(
        out,
        "{}",
        table4::render_comparison(&r.table4).to_markdown()
    );
    let _ = writeln!(out, "{}", table5::render(&r.table5).to_markdown());
    let _ = writeln!(
        out,
        "{}",
        table5::render_comparison(&r.table5).to_markdown()
    );
    let _ = writeln!(out, "{}", table6::render(&r.table6).to_markdown());
    let _ = writeln!(
        out,
        "{}",
        table6::render_comparison(&r.table6).to_markdown()
    );
    let _ = writeln!(out, "{}", table7::render(&r.table7).to_markdown());
    let _ = writeln!(out, "{}", r.manifest.to_markdown());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_quick_campaign_covers_every_table() {
        let r = run_all(&Campaign::quick());
        assert_eq!(r.table4.len(), 5);
        assert_eq!(r.table5.len(), 8);
        assert_eq!(r.table6.len(), 8);
        assert_eq!(r.table7.len(), 3);
        let md = render_markdown(&r);
        for needle in [
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "1. Frontier",
            "141. Manzano",
            "V100",
            "MI250X",
            "Provenance",
            "master seed",
        ] {
            assert!(md.contains(needle), "missing {needle}");
        }
        assert_eq!(r.manifest.reps.2, Campaign::quick().osu.reps);
        assert!(r.manifest.wall_secs.0 >= 0.0);
    }
}
