//! Table 6: Comm|Scope kernel and memcpy costs on accelerator machines.

use doe_commscope::{run_commscope, CommScopeReport};
use doe_machines::{paper, Machine};
use doe_report::{CellValue, Comparison, Table, TableResult, Unit};
use doe_topo::LinkClass;

use crate::campaign::Campaign;
use crate::sched::run_cells;

/// One regenerated row of Table 6.
#[derive(Clone, Debug)]
pub struct Row {
    /// `"<rank>. <name>"`.
    pub label: String,
    /// Machine name.
    pub machine: String,
    /// The full Comm|Scope report (launch, wait, transfers, D2D classes).
    pub report: CommScopeReport,
}

impl std::ops::Deref for Row {
    type Target = CommScopeReport;
    fn deref(&self) -> &CommScopeReport {
        &self.report
    }
}

/// Run the Comm|Scope suite for one GPU machine.
pub fn run_machine(m: &Machine, c: &Campaign) -> Row {
    assert!(m.is_accelerated(), "Table 6 covers accelerator machines");
    let report = run_commscope(
        &m.topo,
        &m.gpu_models,
        &c.commscope,
        c.seed_for(m.name, "commscope"),
    );
    Row {
        label: m.table_label(),
        machine: m.name.to_string(),
        report,
    }
}

/// Run all GPU machines: one Comm|Scope cell per machine, fanned over the
/// worker pool in canonical machine order.
pub fn run(c: &Campaign) -> Vec<Row> {
    let machines = doe_machines::gpu_machines();
    run_cells(&machines, |m| run_machine(m, c))
}

fn class_cell(r: &Row, class: LinkClass) -> CellValue {
    r.d2d_latency_us
        .get(&class)
        .map(|s| CellValue::Stat(*s))
        .unwrap_or(CellValue::Missing)
}

/// Assemble rows into the structured table (the paper's layout, typed).
pub fn result(rows: &[Row]) -> TableResult {
    let mut t = TableResult::new(
        "table6",
        "Table 6: kernel launch/wait latencies (us), memcpy latency (us) and bandwidth (GB/s)",
    );
    t.push_column("Rank/Name", Unit::None);
    t.push_column("Launch", Unit::Micros);
    t.push_column("Wait", Unit::Micros);
    t.push_column("(H2D+D2H)/2 Lat", Unit::Micros);
    t.push_column("(H2D+D2H)/2 BW", Unit::GbPerS);
    for class in ["A", "B", "C", "D"] {
        t.push_column(class, Unit::Micros);
    }
    for r in rows {
        t.push_row(
            Some(&r.machine),
            vec![
                CellValue::Text(r.label.clone()),
                CellValue::Stat(r.launch_us),
                CellValue::Stat(r.wait_us),
                CellValue::Stat(r.hd_latency_us),
                CellValue::Stat(r.hd_bandwidth_gb_s),
                class_cell(r, LinkClass::A),
                class_cell(r, LinkClass::B),
                class_cell(r, LinkClass::C),
                class_cell(r, LinkClass::D),
            ],
        );
    }
    t
}

/// Render rows in the paper's layout (legacy string-table view of
/// [`result`]; byte-identical output).
pub fn render(rows: &[Row]) -> Table {
    result(rows).to_table()
}

/// Render a paper-vs-measured comparison of the means.
pub fn render_comparison(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Table 6 (paper -> measured)",
        &[
            "Rank/Name",
            "Launch",
            "Wait",
            "HD Lat",
            "HD BW",
            "A",
            "B",
            "C",
            "D",
        ],
    );
    for r in rows {
        let Some(p) = paper::table6_row(&r.machine) else {
            continue;
        };
        let cmp_class = |i: usize, class: LinkClass| -> String {
            match (p.d2d[i], r.d2d_latency_us.get(&class)) {
                (Some((mean, _)), Some(s)) => Comparison::new(mean, s.mean).to_string(),
                _ => String::new(),
            }
        };
        t.push_row(vec![
            r.label.clone(),
            Comparison::new(p.launch.0, r.launch_us.mean).to_string(),
            Comparison::new(p.wait.0, r.wait_us.mean).to_string(),
            Comparison::new(p.hd_latency.0, r.hd_latency_us.mean).to_string(),
            Comparison::new(p.hd_bandwidth.0, r.hd_bandwidth_gb_s.mean).to_string(),
            cmp_class(0, LinkClass::A),
            cmp_class(1, LinkClass::B),
            cmp_class(2, LinkClass::C),
            cmp_class(3, LinkClass::D),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_row_matches_paper_decomposition() {
        let m = doe_machines::by_name("Frontier").unwrap();
        let row = run_machine(&m, &Campaign::quick());
        assert!(
            (row.launch_us.mean - 1.51).abs() < 0.1,
            "launch={}",
            row.launch_us.mean
        );
        assert!(
            (row.wait_us.mean - 0.14).abs() < 0.05,
            "wait={}",
            row.wait_us.mean
        );
        assert!(
            (row.hd_latency_us.mean - 12.91).abs() < 0.5,
            "hd={}",
            row.hd_latency_us.mean
        );
        assert_eq!(row.d2d_latency_us.len(), 4);
    }

    #[test]
    fn v100_vs_a100_launch_hierarchy() {
        let summit = run_machine(
            &doe_machines::by_name("Summit").unwrap(),
            &Campaign::quick(),
        );
        let perl = run_machine(
            &doe_machines::by_name("Perlmutter").unwrap(),
            &Campaign::quick(),
        );
        // The paper's headline hierarchy: 4-5 us on V100, under 2 us on A100.
        assert!(summit.launch_us.mean > 4.0);
        assert!(perl.launch_us.mean < 2.5);
        assert!(summit.wait_us.mean > 3.0);
        assert!(perl.wait_us.mean < 1.5);
    }

    #[test]
    fn render_contains_all_columns() {
        let m = doe_machines::by_name("Tioga").unwrap();
        let rows = vec![run_machine(&m, &Campaign::quick())];
        let t = render(&rows);
        assert_eq!(t.headers.len(), 9);
        assert!(t.to_markdown().contains("132. Tioga"));
        assert!(!render_comparison(&rows).rows.is_empty());
    }
}
