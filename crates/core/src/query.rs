//! The unified typed query API: one parameterized query space over the
//! whole campaign surface, with canonical serialization and
//! content-addressed cache keys.
//!
//! Everything the suite computes is a pure function of (machine spec,
//! suite config, seed, code version) — PRs 1–7 made campaigns
//! byte-identical across job counts and queue cores, so every result is
//! infinitely cacheable. This module makes that property *addressable*:
//!
//! * [`Query`] — a typed enum over the query space ("Table 4",
//!   "Table 5 for Frontier", "latency sweep, Eagle vs Theta", "full
//!   suite with overridden machine parameters"), replacing N bespoke
//!   subcommand flag sets (the Task Bench argument, arXiv:1908.05790).
//! * Canonical serialization — [`Query::to_json`] renders through
//!   [`doe_report::json`]'s canonical writer, so equal queries always
//!   serialize to the same bytes and distinct queries never collide
//!   (proptested in `tests/integration_query.rs`). Seeds render as hex
//!   strings because `u64` does not fit in a JSON number.
//! * Content hashes — every plan cell (one table row on one machine) is
//!   keyed by FNV-1a over (code version, table id, machine name,
//!   machine-spec digest, campaign digest). A changed machine parameter
//!   changes exactly that machine's spec digest, so it invalidates only
//!   the cells that depend on it — the daemon's precise-invalidation
//!   contract. Reps, seed, and estimator config all live in the
//!   campaign digest, keeping cached numbers comparable the way "MPI
//!   Benchmarking Revisited" (arXiv:1505.07734) demands of any
//!   benchmark result exchange.
//!
//! [`plan`] expands a query into row-granular cells; [`QueryPlan::compute`]
//! executes one cell; [`QueryPlan::assemble`] folds computed (or cached)
//! cells into a [`QueryResult`] whose rendering is a pure function of the
//! cell values — the byte-identical-body property the daemon tests pin.

use std::sync::Arc;

use doe_benchlib::Summary;
use doe_machines::Machine;
use doe_osu::{on_node_pair, on_socket_pair, osu_latency, OsuConfig};
use doe_report::json::{self, Json};
use doe_report::{CellValue, Format, TableResult, Unit};

use crate::campaign::Campaign;
use crate::{table4, table5, table6, table7};

/// Version tag folded into every cache key; bump the `+q` suffix
/// whenever result semantics change without a crate version bump.
pub const CODE_VERSION: &str = concat!(env!("CARGO_PKG_VERSION"), "+q1");

/// 64-bit FNV-1a over a byte stream — the suite's content hash.
// doebench::effects(pure)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A query-layer failure, mapped to HTTP 400 by the daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryError(pub String);

impl QueryError {
    fn new(msg: impl Into<String>) -> Self {
        QueryError(msg.into())
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for QueryError {}

// ---------------------------------------------------------------------
// Query types
// ---------------------------------------------------------------------

/// Campaign protocol selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Reduced repetitions/sweeps (tests, smoke runs).
    Quick,
    /// The paper's 100-repetition protocol.
    Paper,
}

impl Profile {
    /// Canonical name.
    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Paper => "paper",
        }
    }

    fn from_str(s: &str) -> Result<Self, QueryError> {
        match s {
            "quick" => Ok(Profile::Quick),
            "paper" => Ok(Profile::Paper),
            other => Err(QueryError::new(format!("unknown profile '{other}'"))),
        }
    }
}

/// Which paper table a [`Query::Table`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableId {
    /// CPU machines: memory bandwidth + MPI latency.
    Table4,
    /// GPU machines: device bandwidth + MPI latencies.
    Table5,
    /// GPU machines: Comm|Scope kernel/copy costs.
    Table6,
    /// Min–max summary per accelerator generation (derived from 5+6).
    Table7,
}

impl TableId {
    /// Canonical name (`"table4"` …).
    pub fn as_str(self) -> &'static str {
        match self {
            TableId::Table4 => "table4",
            TableId::Table5 => "table5",
            TableId::Table6 => "table6",
            TableId::Table7 => "table7",
        }
    }

    fn from_str(s: &str) -> Result<Self, QueryError> {
        match s {
            "table4" => Ok(TableId::Table4),
            "table5" => Ok(TableId::Table5),
            "table6" => Ok(TableId::Table6),
            "table7" => Ok(TableId::Table7),
            other => Err(QueryError::new(format!("unknown table '{other}'"))),
        }
    }
}

/// Machine selection for table queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineSel {
    /// Every machine the table covers, in canonical registry order.
    All,
    /// A subset, in the order given.
    Named(Vec<String>),
}

/// A machine parameter a query may override — the "custom machine"
/// surface. Each field maps onto one knob of the registry spec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverrideField {
    /// `host_mem.peak_bw_gb_s`.
    HostPeakBwGbS,
    /// `host_mem.sustained_efficiency`.
    HostSustainedEff,
    /// `host_mem.per_core_bw_gb_s`.
    HostPerCoreBwGbS,
    /// `host_stream_jitter.rel_sigma`.
    HostStreamJitterRel,
    /// `mpi.shm_latency`, in µs.
    MpiShmLatencyUs,
    /// `mpi.send_overhead`, in µs.
    MpiSendOverheadUs,
    /// `mpi.recv_overhead`, in µs.
    MpiRecvOverheadUs,
    /// `gpu_models[*].launch_overhead`, in µs.
    GpuLaunchUs,
    /// `gpu_models[*].sync_overhead`, in µs.
    GpuSyncUs,
    /// `gpu_models[*].hbm.peak_bw_gb_s`.
    GpuPeakBwGbS,
}

impl OverrideField {
    /// Every field, for parsers and usage text.
    pub const ALL: [OverrideField; 10] = [
        OverrideField::HostPeakBwGbS,
        OverrideField::HostSustainedEff,
        OverrideField::HostPerCoreBwGbS,
        OverrideField::HostStreamJitterRel,
        OverrideField::MpiShmLatencyUs,
        OverrideField::MpiSendOverheadUs,
        OverrideField::MpiRecvOverheadUs,
        OverrideField::GpuLaunchUs,
        OverrideField::GpuSyncUs,
        OverrideField::GpuPeakBwGbS,
    ];

    /// Canonical name.
    pub fn as_str(self) -> &'static str {
        match self {
            OverrideField::HostPeakBwGbS => "host_peak_bw_gb_s",
            OverrideField::HostSustainedEff => "host_sustained_efficiency",
            OverrideField::HostPerCoreBwGbS => "host_per_core_bw_gb_s",
            OverrideField::HostStreamJitterRel => "host_stream_jitter_rel",
            OverrideField::MpiShmLatencyUs => "mpi_shm_latency_us",
            OverrideField::MpiSendOverheadUs => "mpi_send_overhead_us",
            OverrideField::MpiRecvOverheadUs => "mpi_recv_overhead_us",
            OverrideField::GpuLaunchUs => "gpu_launch_us",
            OverrideField::GpuSyncUs => "gpu_sync_us",
            OverrideField::GpuPeakBwGbS => "gpu_peak_bw_gb_s",
        }
    }

    fn from_str(s: &str) -> Result<Self, QueryError> {
        OverrideField::ALL
            .into_iter()
            .find(|f| f.as_str() == s)
            .ok_or_else(|| QueryError::new(format!("unknown override field '{s}'")))
    }

    /// Apply the override to a cloned machine spec.
    fn apply(self, m: &mut Machine, value: f64) -> Result<(), QueryError> {
        use doe_simtime::SimDuration;
        let us = SimDuration::from_us;
        match self {
            OverrideField::HostPeakBwGbS => m.host_mem.peak_bw_gb_s = value,
            OverrideField::HostSustainedEff => m.host_mem.sustained_efficiency = value,
            OverrideField::HostPerCoreBwGbS => m.host_mem.per_core_bw_gb_s = value,
            OverrideField::HostStreamJitterRel => m.host_stream_jitter.rel_sigma = value,
            OverrideField::MpiShmLatencyUs => m.mpi.shm_latency = us(value),
            OverrideField::MpiSendOverheadUs => m.mpi.send_overhead = us(value),
            OverrideField::MpiRecvOverheadUs => m.mpi.recv_overhead = us(value),
            OverrideField::GpuLaunchUs | OverrideField::GpuSyncUs | OverrideField::GpuPeakBwGbS => {
                if m.gpu_models.is_empty() {
                    return Err(QueryError::new(format!(
                        "{} has no accelerator; cannot override {}",
                        m.name,
                        self.as_str()
                    )));
                }
                for g in &mut m.gpu_models {
                    match self {
                        OverrideField::GpuLaunchUs => g.launch_overhead = us(value),
                        OverrideField::GpuSyncUs => g.sync_overhead = us(value),
                        OverrideField::GpuPeakBwGbS => g.hbm.peak_bw_gb_s = value,
                        _ => unreachable!("gpu arm"),
                    }
                }
            }
        }
        Ok(())
    }
}

/// One machine-parameter override.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecOverride {
    /// Machine the override applies to.
    pub machine: String,
    /// Which knob.
    pub field: OverrideField,
    /// New value (units per [`OverrideField`] docs). Must be finite.
    pub value: f64,
}

/// Parameters shared by every query variant.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryParams {
    /// Campaign protocol.
    pub profile: Profile,
    /// Master-seed override; `None` uses the campaign default.
    pub seed: Option<u64>,
    /// Machine-parameter overrides, applied in order.
    pub overrides: Vec<SpecOverride>,
}

impl QueryParams {
    /// Quick profile, default seed, no overrides.
    pub fn quick() -> Self {
        QueryParams {
            profile: Profile::Quick,
            seed: None,
            overrides: Vec::new(),
        }
    }

    /// Paper profile, default seed, no overrides.
    pub fn paper() -> Self {
        QueryParams {
            profile: Profile::Paper,
            seed: None,
            overrides: Vec::new(),
        }
    }

    /// The campaign this query runs under.
    pub fn campaign(&self) -> Campaign {
        let mut c = match self.profile {
            Profile::Quick => Campaign::quick(),
            Profile::Paper => Campaign::paper(),
        };
        if let Some(seed) = self.seed {
            c.seed = seed;
        }
        c
    }
}

/// The typed query space — the daemon's entire request surface, and what
/// CLI subcommands now construct instead of hand-rolling flag handling.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// One paper table, optionally restricted to named machines.
    Table {
        /// Which table.
        id: TableId,
        /// Which machines.
        machines: MachineSel,
        /// Protocol, seed, overrides.
        params: QueryParams,
    },
    /// OSU message-size latency sweep comparing machines column-wise.
    Sweep {
        /// Machines to compare (at least one).
        machines: Vec<String>,
        /// Protocol, seed, overrides.
        params: QueryParams,
    },
    /// The full suite: Tables 4–7 in one response.
    Suite {
        /// Protocol, seed, overrides.
        params: QueryParams,
    },
}

impl Query {
    /// The shared parameter block.
    pub fn params(&self) -> &QueryParams {
        match self {
            Query::Table { params, .. } | Query::Sweep { params, .. } | Query::Suite { params } => {
                params
            }
        }
    }

    // -- canonical serialization --------------------------------------

    /// Canonical JSON value. Every field renders, including defaults, so
    /// serialization is injective over distinct queries.
    pub fn to_json(&self) -> Json {
        let params = self.params();
        let seed = match params.seed {
            None => Json::s("default"),
            Some(s) => Json::s(format!("{s:#x}")),
        };
        let overrides = Json::Arr(
            params
                .overrides
                .iter()
                .map(|o| {
                    Json::obj([
                        ("machine", Json::s(o.machine.clone())),
                        ("field", Json::s(o.field.as_str())),
                        ("value", Json::Num(o.value)),
                    ])
                })
                .collect(),
        );
        let machines_json = |sel: &MachineSel| match sel {
            MachineSel::All => Json::s("all"),
            MachineSel::Named(names) => Json::Arr(names.iter().cloned().map(Json::Str).collect()),
        };
        let (kind, mut obj) = match self {
            Query::Table { id, machines, .. } => (
                "table",
                vec![
                    ("table", Json::s(id.as_str())),
                    ("machines", machines_json(machines)),
                ],
            ),
            Query::Sweep { machines, .. } => (
                "sweep",
                vec![(
                    "machines",
                    Json::Arr(machines.iter().cloned().map(Json::Str).collect()),
                )],
            ),
            Query::Suite { .. } => ("suite", vec![]),
        };
        obj.push(("kind", Json::s(kind)));
        obj.push(("profile", Json::s(params.profile.as_str())));
        obj.push(("seed", seed));
        obj.push(("overrides", overrides));
        Json::obj(obj)
    }

    /// The canonical serialized form (cache-key input, response echo).
    pub fn canonical(&self) -> String {
        self.to_json().canonical()
    }

    /// Parse a query from its JSON form. Accepts any field order and
    /// whitespace; re-serializing the parsed query is byte-stable.
    pub fn from_json(v: &Json) -> Result<Query, QueryError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| QueryError::new("query needs a string 'kind'"))?;
        let params = parse_params(v)?;
        match kind {
            "table" => {
                let id = TableId::from_str(
                    v.get("table")
                        .and_then(Json::as_str)
                        .ok_or_else(|| QueryError::new("table query needs 'table'"))?,
                )?;
                let machines = match v.get("machines") {
                    None => MachineSel::All,
                    Some(Json::Str(s)) if s == "all" => MachineSel::All,
                    Some(Json::Arr(items)) => MachineSel::Named(parse_names(items)?),
                    Some(_) => {
                        return Err(QueryError::new(
                            "'machines' must be \"all\" or an array of names",
                        ))
                    }
                };
                Ok(Query::Table {
                    id,
                    machines,
                    params,
                })
            }
            "sweep" => {
                let machines = match v.get("machines") {
                    Some(Json::Arr(items)) => parse_names(items)?,
                    _ => return Err(QueryError::new("sweep query needs a 'machines' array")),
                };
                if machines.is_empty() {
                    return Err(QueryError::new("sweep needs at least one machine"));
                }
                Ok(Query::Sweep { machines, params })
            }
            "suite" => Ok(Query::Suite { params }),
            other => Err(QueryError::new(format!("unknown query kind '{other}'"))),
        }
    }

    /// Parse a serialized query (JSON text).
    pub fn parse(text: &str) -> Result<Query, QueryError> {
        let v = json::parse(text).map_err(|e| QueryError::new(e.to_string()))?;
        Query::from_json(&v)
    }

    /// Parse the CLI/URL shorthand:
    ///
    /// ```text
    /// table4 | table5 | table6 | table7 | suite | tables | sweep
    ///   [@quick|@paper] [<machine>...] [machines=A,B] [seed=0x...|N]
    ///   [set <machine>.<field>=<value>]...
    /// ```
    ///
    /// Examples: `table4`, `table5@paper Frontier`,
    /// `sweep Eagle Theta`, `suite set Frontier.gpu_launch_us=2.5`.
    pub fn parse_shorthand(text: &str) -> Result<Query, QueryError> {
        let mut tokens = text.split_whitespace().peekable();
        let head = tokens
            .next()
            .ok_or_else(|| QueryError::new("empty query"))?;
        let (cmd, profile_tag) = match head.split_once('@') {
            Some((c, p)) => (c, Some(p)),
            None => (head, None),
        };
        let mut params = QueryParams::quick();
        if let Some(p) = profile_tag {
            params.profile = Profile::from_str(p)?;
        }
        let mut names: Vec<String> = Vec::new();
        while let Some(tok) = tokens.next() {
            if tok == "set" {
                let spec = tokens
                    .next()
                    .ok_or_else(|| QueryError::new("'set' needs <machine>.<field>=<value>"))?;
                params.overrides.push(parse_override(spec)?);
            } else if let Some(v) = tok.strip_prefix("profile=") {
                params.profile = Profile::from_str(v)?;
            } else if let Some(v) = tok.strip_prefix("seed=") {
                params.seed = Some(parse_seed(v)?);
            } else if let Some(v) = tok.strip_prefix("machines=") {
                names.extend(v.split(',').filter(|s| !s.is_empty()).map(str::to_string));
            } else if tok.starts_with('-') || tok.contains('=') {
                return Err(QueryError::new(format!("unknown query token '{tok}'")));
            } else {
                names.push(tok.to_string());
            }
        }
        match cmd {
            "table4" | "table5" | "table6" | "table7" => Ok(Query::Table {
                id: TableId::from_str(cmd)?,
                machines: if names.is_empty() {
                    MachineSel::All
                } else {
                    MachineSel::Named(names)
                },
                params,
            }),
            "sweep" => {
                if names.is_empty() {
                    return Err(QueryError::new("sweep needs at least one machine"));
                }
                Ok(Query::Sweep {
                    machines: names,
                    params,
                })
            }
            "suite" | "tables" => {
                if names.is_empty() {
                    Ok(Query::Suite { params })
                } else {
                    Err(QueryError::new("suite takes no machine list"))
                }
            }
            other => Err(QueryError::new(format!(
                "unknown query '{other}' (expected table4..table7, suite, or sweep)"
            ))),
        }
    }
}

fn parse_names(items: &[Json]) -> Result<Vec<String>, QueryError> {
    items
        .iter()
        .map(|j| {
            j.as_str()
                .map(str::to_string)
                .ok_or_else(|| QueryError::new("machine names must be strings"))
        })
        .collect()
}

fn parse_seed(v: &str) -> Result<u64, QueryError> {
    let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| QueryError::new(format!("bad seed '{v}'")))
}

/// `<machine>.<field>=<value>` for the shorthand's `set` token.
fn parse_override(spec: &str) -> Result<SpecOverride, QueryError> {
    let (target, value) = spec
        .split_once('=')
        .ok_or_else(|| QueryError::new(format!("override '{spec}' needs '='")))?;
    let (machine, field) = target
        .split_once('.')
        .ok_or_else(|| QueryError::new(format!("override '{spec}' needs <machine>.<field>")))?;
    let value: f64 = value
        .parse()
        .map_err(|_| QueryError::new(format!("bad override value in '{spec}'")))?;
    if !value.is_finite() {
        return Err(QueryError::new("override value must be finite"));
    }
    Ok(SpecOverride {
        machine: machine.to_string(),
        field: OverrideField::from_str(field)?,
        value,
    })
}

fn parse_params(v: &Json) -> Result<QueryParams, QueryError> {
    let profile = match v.get("profile") {
        None => Profile::Quick,
        Some(p) => Profile::from_str(
            p.as_str()
                .ok_or_else(|| QueryError::new("'profile' must be a string"))?,
        )?,
    };
    let seed = match v.get("seed") {
        None => None,
        Some(Json::Str(s)) if s == "default" => None,
        Some(Json::Str(s)) => Some(parse_seed(s)?),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n < 2f64.powi(53) => {
            Some(*n as u64)
        }
        Some(_) => {
            return Err(QueryError::new(
                "'seed' must be \"default\" or a hex string",
            ))
        }
    };
    let mut overrides = Vec::new();
    if let Some(list) = v.get("overrides") {
        let items = list
            .as_arr()
            .ok_or_else(|| QueryError::new("'overrides' must be an array"))?;
        for item in items {
            let machine = item
                .get("machine")
                .and_then(Json::as_str)
                .ok_or_else(|| QueryError::new("override needs a 'machine' string"))?;
            let field = OverrideField::from_str(
                item.get("field")
                    .and_then(Json::as_str)
                    .ok_or_else(|| QueryError::new("override needs a 'field' string"))?,
            )?;
            let value = item
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| QueryError::new("override needs a numeric 'value'"))?;
            if !value.is_finite() {
                return Err(QueryError::new("override value must be finite"));
            }
            overrides.push(SpecOverride {
                machine: machine.to_string(),
                field,
                value,
            });
        }
    }
    Ok(QueryParams {
        profile,
        seed,
        overrides,
    })
}

// ---------------------------------------------------------------------
// Digests and cache keys
// ---------------------------------------------------------------------

/// Content digest of one machine spec: FNV-1a over the full `Debug`
/// rendering, which derives through every model field (topology, memory
/// model, GPU models, MPI config, jitter, software env). Any single
/// field flip changes the digest — pinned by the seeded-mutation test.
// doebench::effects(pure)
pub fn machine_digest(m: &Machine) -> u64 {
    fnv1a64(format!("{m:?}").as_bytes())
}

/// Content digest of the campaign (suite configs + master seed).
// doebench::effects(pure)
pub fn campaign_digest(c: &Campaign) -> u64 {
    fnv1a64(format!("{c:?}").as_bytes())
}

/// The content-addressed identity of one plan cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// Full canonical key string (collision guard; the map key).
    pub canon: String,
    /// FNV-1a of `canon` (shard selector / display handle).
    pub hash: u64,
    /// Table the cell belongs to (`"table4"`, `"sweep"`, …).
    pub table: &'static str,
    /// Machine the cell depends on — the invalidation unit.
    pub machine: String,
}

fn cell_key(table: &'static str, m: &Machine, c: &Campaign, extra: &str) -> CellKey {
    let canon = format!(
        "cell/v={CODE_VERSION}/t={table}/m={}/spec={:016x}/camp={:016x}{extra}",
        m.name,
        machine_digest(m),
        campaign_digest(c),
    );
    let hash = fnv1a64(canon.as_bytes());
    CellKey {
        canon,
        hash,
        table,
        machine: m.name.to_string(),
    }
}

// ---------------------------------------------------------------------
// Planning and execution
// ---------------------------------------------------------------------

/// One point of a sweep cell.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// On-socket one-way latency, µs.
    pub socket: Summary,
    /// On-node one-way latency, µs.
    pub node: Summary,
}

/// The sweep result for one machine.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Machine name.
    pub machine: String,
    /// `"<rank>. <name>"` label.
    pub label: String,
    /// One point per configured message size.
    pub points: Vec<SweepPoint>,
}

/// The computed value of one cell — one table row on one machine. This
/// is what the daemon's cache stores; everything downstream (rendering,
/// Table 7 summarization) is a pure function of these.
#[derive(Clone, Debug)]
pub enum RowValue {
    /// A Table 4 row.
    T4(table4::Row),
    /// A Table 5 row.
    T5(table5::Row),
    /// A Table 6 row.
    T6(table6::Row),
    /// A sweep column.
    Sweep(SweepRow),
}

/// Which benchmark family a planned cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CellSpec {
    T4,
    T5,
    T6,
    Sweep,
}

/// One cell of a query plan.
pub struct PlannedCell {
    /// Content-addressed identity.
    pub key: CellKey,
    machine: Machine,
    spec: CellSpec,
}

/// Which tables [`QueryPlan::assemble`] emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    One(TableId),
    Sweep,
    Suite,
}

/// An expanded, validated query: resolved machines, derived campaign,
/// and the row-granular cell list with content-addressed keys.
pub struct QueryPlan {
    /// Canonical serialization of the source query.
    pub canon: String,
    /// FNV-1a content hash of the whole query (canon + campaign digest).
    pub key: u64,
    campaign: Campaign,
    cells: Vec<PlannedCell>,
    shape: Shape,
    sweep_cfg: Option<OsuConfig>,
}

/// Resolve a machine by name and apply its overrides.
fn resolve_machine(name: &str, overrides: &[SpecOverride]) -> Result<Machine, QueryError> {
    let mut m = doe_machines::by_name(name)
        .ok_or_else(|| QueryError::new(format!("unknown machine: {name}")))?;
    for o in overrides {
        if o.machine == name {
            o.field.apply(&mut m, o.value)?;
        }
    }
    Ok(m)
}

fn select_machines(
    sel: &MachineSel,
    pool: Vec<Machine>,
    want_accelerated: bool,
    table: &str,
    overrides: &[SpecOverride],
) -> Result<Vec<Machine>, QueryError> {
    match sel {
        MachineSel::All => pool
            .into_iter()
            .map(|m| resolve_machine(m.name, overrides))
            .collect(),
        MachineSel::Named(names) => names
            .iter()
            .map(|n| {
                let m = resolve_machine(n, overrides)?;
                if m.is_accelerated() != want_accelerated {
                    return Err(QueryError::new(format!(
                        "{n} is {} machine; {table} covers {} machines",
                        if m.is_accelerated() {
                            "an accelerator"
                        } else {
                            "a CPU"
                        },
                        if want_accelerated {
                            "accelerator"
                        } else {
                            "CPU"
                        },
                    )));
                }
                Ok(m)
            })
            .collect(),
    }
}

/// The sweep's OSU configuration for a profile (the CLI `sweep`
/// command's long-standing shape: full size ladder, reduced iterations
/// on the quick profile).
pub fn sweep_config(profile: Profile) -> OsuConfig {
    let mut cfg = OsuConfig::paper();
    match profile {
        Profile::Paper => {
            cfg.reps = 100;
            cfg.small_iters = 1000;
            cfg.large_iters = 100;
        }
        Profile::Quick => {
            cfg.reps = 10;
            cfg.small_iters = 100;
            cfg.large_iters = 10;
        }
    }
    cfg
}

/// Expand a query into its validated plan.
pub fn plan(q: &Query) -> Result<QueryPlan, QueryError> {
    let params = q.params();
    let campaign = params.campaign();
    let canon = q.canonical();
    let mut cells = Vec::new();
    let mut sweep_cfg = None;
    let shape;
    match q {
        Query::Table { id, machines, .. } => {
            shape = Shape::One(*id);
            plan_table(*id, machines, &params.overrides, &campaign, &mut cells)?;
        }
        Query::Suite { .. } => {
            shape = Shape::Suite;
            plan_table(
                TableId::Table4,
                &MachineSel::All,
                &params.overrides,
                &campaign,
                &mut cells,
            )?;
            plan_table(
                TableId::Table5,
                &MachineSel::All,
                &params.overrides,
                &campaign,
                &mut cells,
            )?;
            plan_table(
                TableId::Table6,
                &MachineSel::All,
                &params.overrides,
                &campaign,
                &mut cells,
            )?;
        }
        Query::Sweep { machines, .. } => {
            shape = Shape::Sweep;
            let cfg = sweep_config(params.profile);
            let cfg_digest = fnv1a64(format!("{cfg:?}").as_bytes());
            let extra = format!("/sweep={cfg_digest:016x}");
            for name in machines {
                let m = resolve_machine(name, &params.overrides)?;
                if on_node_pair(&m.topo).is_none() || on_socket_pair(&m.topo).is_none() {
                    return Err(QueryError::new(format!("{name} is too small to sweep")));
                }
                cells.push(PlannedCell {
                    key: cell_key("sweep", &m, &campaign, &extra),
                    machine: m,
                    spec: CellSpec::Sweep,
                });
            }
            sweep_cfg = Some(cfg);
        }
    }
    let key = fnv1a64(format!("{canon}/camp={:016x}", campaign_digest(&campaign)).as_bytes());
    Ok(QueryPlan {
        canon,
        key,
        campaign,
        cells,
        shape,
        sweep_cfg,
    })
}

fn plan_table(
    id: TableId,
    machines: &MachineSel,
    overrides: &[SpecOverride],
    campaign: &Campaign,
    cells: &mut Vec<PlannedCell>,
) -> Result<(), QueryError> {
    match id {
        TableId::Table4 => {
            for m in select_machines(
                machines,
                doe_machines::cpu_machines(),
                false,
                "table4",
                overrides,
            )? {
                cells.push(PlannedCell {
                    key: cell_key("table4", &m, campaign, ""),
                    machine: m,
                    spec: CellSpec::T4,
                });
            }
        }
        TableId::Table5 | TableId::Table6 => {
            let table = id.as_str();
            let spec = if id == TableId::Table5 {
                CellSpec::T5
            } else {
                CellSpec::T6
            };
            let tag: &'static str = if id == TableId::Table5 {
                "table5"
            } else {
                "table6"
            };
            for m in select_machines(
                machines,
                doe_machines::gpu_machines(),
                true,
                table,
                overrides,
            )? {
                cells.push(PlannedCell {
                    key: cell_key(tag, &m, campaign, ""),
                    machine: m,
                    spec,
                });
            }
        }
        TableId::Table7 => {
            // Table 7 is derived: its cells are the Table 5 + Table 6 rows
            // it summarizes (shared with those tables' caches).
            if !matches!(machines, MachineSel::All) {
                return Err(QueryError::new(
                    "table7 summarizes all accelerator machines; it takes no machine list",
                ));
            }
            plan_table(
                TableId::Table5,
                &MachineSel::All,
                overrides,
                campaign,
                cells,
            )?;
            plan_table(
                TableId::Table6,
                &MachineSel::All,
                overrides,
                campaign,
                cells,
            )?;
        }
    }
    Ok(())
}

impl QueryPlan {
    /// The plan's cells, in assembly order.
    pub fn cells(&self) -> &[PlannedCell] {
        &self.cells
    }

    /// The campaign the cells run under.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Execute one cell. Pure: the value depends only on the cell's
    /// (machine spec, campaign) — exactly what its key hashes.
    // doebench::effects(no-block)
    pub fn compute(&self, i: usize) -> RowValue {
        let cell = &self.cells[i];
        let c = &self.campaign;
        match cell.spec {
            CellSpec::T4 => RowValue::T4(table4::run_machine(&cell.machine, c)),
            CellSpec::T5 => RowValue::T5(table5::run_machine(&cell.machine, c)),
            CellSpec::T6 => RowValue::T6(table6::run_machine(&cell.machine, c)),
            CellSpec::Sweep => RowValue::Sweep(self.sweep_cell(&cell.machine)),
        }
    }

    fn sweep_cell(&self, m: &Machine) -> SweepRow {
        let cfg = self.sweep_cfg.as_ref().expect("sweep plan has a config");
        let socket = on_socket_pair(&m.topo).expect("validated at plan time");
        let node = on_node_pair(&m.topo).expect("validated at plan time");
        let lat_s = osu_latency(
            &m.topo,
            &m.mpi,
            socket,
            cfg,
            self.campaign.seed_for(m.name, "sweep-socket"),
        );
        let lat_n = osu_latency(
            &m.topo,
            &m.mpi,
            node,
            cfg,
            self.campaign.seed_for(m.name, "sweep-node"),
        );
        SweepRow {
            machine: m.name.to_string(),
            label: m.table_label(),
            points: lat_s
                .iter()
                .zip(&lat_n)
                .map(|(s, n)| SweepPoint {
                    bytes: s.bytes,
                    socket: s.one_way_us,
                    node: n.one_way_us,
                })
                .collect(),
        }
    }

    /// Fold computed (or cached) cell values — one per plan cell, in
    /// order — into the final result. Pure function of the values, so
    /// responses assembled from cache are byte-identical to cold runs.
    pub fn assemble(&self, values: &[Arc<RowValue>]) -> Result<QueryResult, QueryError> {
        if values.len() != self.cells.len() {
            return Err(QueryError::new("cell value count mismatch"));
        }
        let mut t4 = Vec::new();
        let mut t5 = Vec::new();
        let mut t6 = Vec::new();
        let mut sweeps = Vec::new();
        for v in values {
            match v.as_ref() {
                RowValue::T4(r) => t4.push(r.clone()),
                RowValue::T5(r) => t5.push(r.clone()),
                RowValue::T6(r) => t6.push(r.clone()),
                RowValue::Sweep(r) => sweeps.push(r.clone()),
            }
        }
        let tables = match self.shape {
            Shape::One(TableId::Table4) => vec![table4::result(&t4)],
            Shape::One(TableId::Table5) => vec![table5::result(&t5)],
            Shape::One(TableId::Table6) => vec![table6::result(&t6)],
            Shape::One(TableId::Table7) => {
                vec![table7::result(&table7::summarize(&t5, &t6))]
            }
            Shape::Suite => vec![
                table4::result(&t4),
                table5::result(&t5),
                table6::result(&t6),
                table7::result(&table7::summarize(&t5, &t6)),
            ],
            Shape::Sweep => vec![sweep_result(&sweeps)],
        };
        Ok(QueryResult {
            query: self.canon.clone(),
            key: format!("{:016x}", self.key),
            code_version: CODE_VERSION.to_string(),
            tables,
        })
    }
}

/// Assemble sweep columns into the comparison table.
fn sweep_result(rows: &[SweepRow]) -> TableResult {
    let mut t = TableResult::new("sweep", "OSU point-to-point latency sweep (us)");
    t.push_column("Bytes", Unit::Bytes);
    for r in rows {
        t.push_column(format!("{} On-Socket", r.machine), Unit::Micros);
        t.push_column(format!("{} On-Node", r.machine), Unit::Micros);
    }
    let n_points = rows.iter().map(|r| r.points.len()).min().unwrap_or(0);
    for i in 0..n_points {
        let mut cells = vec![CellValue::Text(rows[0].points[i].bytes.to_string())];
        for r in rows {
            cells.push(CellValue::Stat(r.points[i].socket));
            cells.push(CellValue::Stat(r.points[i].node));
        }
        t.push_row(None, cells);
    }
    t
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// A fully assembled query response payload. Deterministic: rendering
/// carries no wall-clock, host, or cache-state dependence, so identical
/// queries always produce byte-identical bodies (serving metadata
/// travels separately, in the daemon's response headers).
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Canonical serialization of the query answered.
    pub query: String,
    /// `%016x` FNV content hash of (query, campaign digest).
    pub key: String,
    /// [`CODE_VERSION`] that produced the result.
    pub code_version: String,
    /// One or more structured tables.
    pub tables: Vec<TableResult>,
}

impl QueryResult {
    /// The JSON envelope (tables rendered structurally).
    pub fn to_json(&self) -> Json {
        let query = json::parse(&self.query).unwrap_or_else(|_| Json::s(self.query.clone()));
        Json::obj([
            ("code_version", Json::s(self.code_version.clone())),
            ("key", Json::s(self.key.clone())),
            ("query", query),
            (
                "tables",
                Json::Arr(self.tables.iter().map(TableResult::to_json).collect()),
            ),
        ])
    }

    /// Render the response body in a format — the single render path
    /// shared by the CLI and the daemon. Text formats concatenate
    /// tables exactly the way the legacy subcommands printed them.
    pub fn body(&self, f: Format) -> String {
        match f {
            Format::Json => self.to_json().canonical(),
            text => {
                let mut out = String::new();
                for (i, t) in self.tables.iter().enumerate() {
                    if i > 0 {
                        out.push('\n');
                    }
                    out.push_str(&doe_report::render(t, text));
                }
                out
            }
        }
    }
}

/// Plan and execute a query in one call, fanning cold cells over the
/// worker pool — the offline (non-daemon) entry point the CLI table
/// subcommands are thin clients of.
pub fn run_query(q: &Query) -> Result<QueryResult, QueryError> {
    let plan = plan(q)?;
    let n = plan.cells().len();
    let values: Vec<Arc<RowValue>> =
        crate::sched::run_cells(&(0..n).collect::<Vec<_>>(), |&i| Arc::new(plan.compute(i)));
    plan.assemble(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_roundtrip_is_byte_stable() {
        let q = Query::Table {
            id: TableId::Table5,
            machines: MachineSel::Named(vec!["Frontier".into(), "Summit".into()]),
            params: QueryParams {
                profile: Profile::Paper,
                seed: Some(0xDEAD_BEEF),
                overrides: vec![SpecOverride {
                    machine: "Frontier".into(),
                    field: OverrideField::GpuLaunchUs,
                    value: 2.5,
                }],
            },
        };
        let canon = q.canonical();
        let parsed = Query::parse(&canon).unwrap();
        assert_eq!(parsed, q);
        assert_eq!(parsed.canonical(), canon);
    }

    #[test]
    fn shorthand_parses_the_readme_examples() {
        let q = Query::parse_shorthand("table4").unwrap();
        assert_eq!(
            q,
            Query::Table {
                id: TableId::Table4,
                machines: MachineSel::All,
                params: QueryParams::quick(),
            }
        );
        let q = Query::parse_shorthand("table5@paper Frontier seed=0x7").unwrap();
        match q {
            Query::Table {
                id,
                machines,
                params,
            } => {
                assert_eq!(id, TableId::Table5);
                assert_eq!(machines, MachineSel::Named(vec!["Frontier".into()]));
                assert_eq!(params.profile, Profile::Paper);
                assert_eq!(params.seed, Some(7));
            }
            other => panic!("wrong query: {other:?}"),
        }
        let q =
            Query::parse_shorthand("sweep Eagle Theta set Eagle.mpi_shm_latency_us=0.2").unwrap();
        match q {
            Query::Sweep { machines, params } => {
                assert_eq!(machines, vec!["Eagle".to_string(), "Theta".to_string()]);
                assert_eq!(params.overrides.len(), 1);
            }
            other => panic!("wrong query: {other:?}"),
        }
        assert!(Query::parse_shorthand("table9").is_err());
        assert!(Query::parse_shorthand("sweep").is_err());
        assert!(Query::parse_shorthand("table4 bogus=1").is_err());
    }

    #[test]
    fn machine_digest_is_spec_sensitive() {
        let a = doe_machines::by_name("Frontier").unwrap();
        let mut b = a.clone();
        assert_eq!(machine_digest(&a), machine_digest(&b));
        b.gpu_models[0].launch_overhead = doe_simtime::SimDuration::from_us(9.0);
        assert_ne!(machine_digest(&a), machine_digest(&b));
    }

    #[test]
    fn override_changes_only_dependent_cells() {
        let base = Query::Table {
            id: TableId::Table5,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let tweaked = Query::Table {
            id: TableId::Table5,
            machines: MachineSel::All,
            params: QueryParams {
                overrides: vec![SpecOverride {
                    machine: "Frontier".into(),
                    field: OverrideField::GpuPeakBwGbS,
                    value: 2000.0,
                }],
                ..QueryParams::quick()
            },
        };
        let p0 = plan(&base).unwrap();
        let p1 = plan(&tweaked).unwrap();
        assert_eq!(p0.cells().len(), p1.cells().len());
        for (c0, c1) in p0.cells().iter().zip(p1.cells()) {
            assert_eq!(c0.key.machine, c1.key.machine);
            if c0.key.machine == "Frontier" {
                assert_ne!(c0.key.canon, c1.key.canon, "override must change the key");
            } else {
                assert_eq!(
                    c0.key.canon, c1.key.canon,
                    "unrelated machine keys must not move"
                );
            }
        }
    }

    #[test]
    fn table7_plan_shares_table5_and_6_cells() {
        let q7 = Query::Table {
            id: TableId::Table7,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let q5 = Query::Table {
            id: TableId::Table5,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let p7 = plan(&q7).unwrap();
        let p5 = plan(&q5).unwrap();
        let keys7: Vec<&str> = p7.cells().iter().map(|c| c.key.canon.as_str()).collect();
        for c in p5.cells() {
            assert!(keys7.contains(&c.key.canon.as_str()), "{}", c.key.canon);
        }
    }

    #[test]
    fn gpu_override_on_cpu_machine_is_an_error() {
        let q = Query::Table {
            id: TableId::Table4,
            machines: MachineSel::Named(vec!["Eagle".into()]),
            params: QueryParams {
                overrides: vec![SpecOverride {
                    machine: "Eagle".into(),
                    field: OverrideField::GpuLaunchUs,
                    value: 1.0,
                }],
                ..QueryParams::quick()
            },
        };
        assert!(plan(&q).err().unwrap().0.contains("no accelerator"));
    }

    #[test]
    fn run_query_table4_matches_direct_run() {
        let q = Query::Table {
            id: TableId::Table4,
            machines: MachineSel::All,
            params: QueryParams::quick(),
        };
        let res = run_query(&q).unwrap();
        assert_eq!(res.tables.len(), 1);
        let direct = table4::result(&table4::run(&Campaign::quick()));
        assert_eq!(res.tables[0], direct);
        assert_eq!(
            res.body(Format::Ascii),
            doe_report::render(&direct, Format::Ascii)
        );
    }

    #[test]
    fn sweep_assembles_machine_columns() {
        let q = Query::Sweep {
            machines: vec!["Eagle".into(), "Theta".into()],
            params: QueryParams::quick(),
        };
        let res = run_query(&q).unwrap();
        let t = &res.tables[0];
        assert_eq!(t.columns.len(), 5);
        assert!(t.columns[1].name.contains("Eagle"));
        assert!(t.columns[3].name.contains("Theta"));
        assert!(!t.rows.is_empty());
    }
}
