//! Studies beyond the paper's tables — its §5 future-work list, made
//! runnable.
//!
//! 1. [`internode_latency_table`] / [`contention_series`] /
//!    [`collectives_table`] — inter-node measurements over `doe-net`.
//! 2. [`cpu_vendor_table`] — the Intel/AMD/Arm comparison on the
//!    hypothetical extension machines.
//! 3. [`mpi_variant_table`] — the same machine under different MPI
//!    implementation models.

use doe_benchlib::Samples;
use doe_machines::extensions::extension_machines;
use doe_mpi::{apply_variant, MpiVariant};
use doe_net::collectives::{allreduce_best, barrier, P2pCost};
use doe_net::{Fabric, FabricConfig, NetWorld, NicConfig, NodeId};
use doe_osu::{on_socket_pair, osu_latency, osu_latency_device};
use doe_report::Table;
use doe_simtime::SimDuration;
use doe_topo::DeviceId;

use crate::campaign::Campaign;
use crate::table5::device_pair_cores;

/// Inter-node OSU-style latency/bandwidth: intra-group and inter-group
/// placements, several message sizes.
pub fn internode_latency_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Inter-node point-to-point (future work 1): latency (us) and bandwidth (GB/s)",
        &[
            "Bytes",
            "Intra-group lat",
            "Inter-group lat",
            "Inter-group BW",
        ],
    );
    for bytes in [0u64, 1024, 8 * 1024, 64 * 1024, 1 << 20, 1 << 24] {
        let mut near = Samples::new();
        let mut far = Samples::new();
        let mut bw = Samples::new();
        for rep in 0..10u64 {
            let mut w = NetWorld::new(
                Fabric::new(FabricConfig::slingshot_like()),
                NicConfig::default_hpc(),
                seed ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let a = w.add_rank(NodeId(0)).expect("node");
            let b = w.add_rank(NodeId(1)).expect("node");
            let c = w.add_rank(NodeId(16)).expect("node");
            near.push(w.pingpong_latency_us(a, b, bytes, 50).expect("pingpong"));
            far.push(w.pingpong_latency_us(a, c, bytes, 50).expect("pingpong"));
            if bytes > 0 {
                bw.push(w.streaming_bandwidth(a, c, bytes, 3).expect("bw"));
            }
        }
        t.push_row(vec![
            bytes.to_string(),
            format!("{:.3}", near.summary().mean),
            format!("{:.3}", far.summary().mean),
            if bytes > 0 {
                format!("{:.2}", bw.summary().mean)
            } else {
                "-".to_string()
            },
        ]);
    }
    t
}

/// The "there goes the neighborhood" experiment: inter-group bandwidth as
/// background flows pile onto the global uplink. Returns `(flows, GB/s)`.
pub fn contention_series(seed: u64, max_flows: u32) -> Vec<(u32, f64)> {
    (0..=max_flows)
        .map(|flows| {
            let mut w = NetWorld::new(
                Fabric::new(FabricConfig::slingshot_like()),
                NicConfig::default_hpc(),
                seed,
            );
            let a = w.add_rank(NodeId(0)).expect("node");
            let b = w.add_rank(NodeId(16)).expect("node");
            w.fabric_mut().add_background_flows(0, flows);
            let bw = w.streaming_bandwidth(a, b, 1 << 22, 3).expect("bandwidth");
            (flows, bw)
        })
        .collect()
}

/// Job-placement study on the fabric: a ring allreduce with ranks packed
/// into one switch group vs spread one-per-group, quiet and with noisy
/// neighbours — the scheduling question behind "there goes the
/// neighborhood". Returns rows `(placement, quiet µs, noisy µs)`.
pub fn placement_study(seed: u64, ranks: u32, bytes: u64) -> Vec<(String, f64, f64)> {
    let run = |spread: bool, noisy: bool| -> f64 {
        let mut w = NetWorld::new(
            Fabric::new(FabricConfig::slingshot_like()),
            NicConfig::default_hpc(),
            seed,
        );
        let rs: Vec<_> = (0..ranks)
            .map(|i| {
                let node = if spread { i * 16 } else { i };
                w.add_rank(NodeId(node)).expect("node")
            })
            .collect();
        if noisy {
            for g in 0..8 {
                w.fabric_mut().add_background_flows(g, 3);
            }
        }
        w.barrier();
        let done = w.allreduce_ring(&rs, bytes).expect("allreduce");
        done.as_us()
    };
    vec![
        (
            "packed (one group)".to_string(),
            run(false, false),
            run(false, true),
        ),
        (
            "spread (one per group)".to_string(),
            run(true, false),
            run(true, true),
        ),
    ]
}

/// Allreduce algorithm comparison over the fabric's inter-group path.
pub fn collectives_table() -> Table {
    let fabric = Fabric::new(FabricConfig::slingshot_like());
    let p2p = fabric.path(NodeId(0), NodeId(16)).expect("path");
    let cost = P2pCost {
        alpha: p2p.latency + SimDuration::from_ns(500.0), // + NIC overheads
        bandwidth: p2p.bandwidth,
    };
    let mut t = Table::new(
        "Allreduce algorithm model, 64 nodes (future work 1)",
        &["Bytes", "Recursive-doubling (us)", "Ring (us)", "Winner"],
    );
    let p = 64;
    for shift in [3u32, 10, 14, 17, 20, 24, 27] {
        let bytes = 1u64 << shift;
        let rd = doe_net::collectives::allreduce_recursive_doubling(p, bytes, cost);
        let ring = doe_net::collectives::allreduce_ring(p, bytes, cost);
        let (winner, _) = allreduce_best(p, bytes, cost);
        t.push_row(vec![
            bytes.to_string(),
            format!("{:.2}", rd.as_us()),
            format!("{:.2}", ring.as_us()),
            winner.to_string(),
        ]);
    }
    t.push_row(vec![
        "barrier".to_string(),
        format!("{:.2}", barrier(p, cost).as_us()),
        String::new(),
        String::new(),
    ]);
    t
}

/// Table 4's columns on the hypothetical AMD/Arm/HBM machines (future
/// work 3). Clearly labelled: these rows are not paper results.
pub fn cpu_vendor_table(c: &Campaign) -> Table {
    let mut t = Table::new(
        "CPU vendor comparison on hypothetical machines (future work 3; NOT paper data)",
        &[
            "Machine",
            "CPU",
            "Single",
            "All",
            "Peak",
            "On-Socket",
            "On-Node",
        ],
    );
    for m in extension_machines() {
        let row = crate::table4::run_machine(&m, c);
        t.push_row(vec![
            m.name.to_string(),
            m.cpu_model.to_string(),
            doe_report::pm_summary(&row.single),
            doe_report::pm_summary(&row.all),
            m.host_peak_citation.to_string(),
            doe_report::pm_summary(&row.on_socket),
            doe_report::pm_summary(&row.on_node),
        ]);
    }
    t
}

/// Intra-node collectives *executed* over the MPI runtime on one machine:
/// barrier plus both allreduce algorithms across a size sweep, with eight
/// ranks on the machine's first cores (the paper's "one MPI rank per
/// core" convention).
pub fn intranode_collectives_table(machine: &str, c: &Campaign) -> Option<Table> {
    use doe_osu::{osu_allreduce, osu_barrier, AllreduceAlgo};
    let m = doe_machines::by_name(machine)?;
    let cores: Vec<_> = m.topo.cores.iter().take(8).map(|core| core.id).collect();
    if cores.len() < 8 {
        return None;
    }
    let mut cfg = c.osu.clone();
    cfg.reps = cfg.reps.min(10);
    cfg.small_iters = cfg.small_iters.min(100);
    cfg.large_iters = cfg.large_iters.min(10);
    let mut t = Table::new(
        format!("Intra-node collectives on {} (8 ranks, executed)", m.name),
        &["Bytes", "Recursive-doubling (us)", "Ring (us)", "Winner"],
    );
    let barrier = osu_barrier(&m.topo, &m.mpi, &cores, &cfg, c.seed_for(m.name, "barrier"));
    for bytes in [8u64, 1024, 65_536, 1 << 20, 4 << 20] {
        let rd = osu_allreduce(
            &m.topo,
            &m.mpi,
            &cores,
            bytes,
            AllreduceAlgo::RecursiveDoubling,
            &cfg,
            c.seed_for(m.name, "allreduce-rd"),
        );
        let ring = osu_allreduce(
            &m.topo,
            &m.mpi,
            &cores,
            bytes,
            AllreduceAlgo::Ring,
            &cfg,
            c.seed_for(m.name, "allreduce-ring"),
        );
        let winner = if rd.mean <= ring.mean {
            "recursive-doubling"
        } else {
            "ring"
        };
        t.push_row(vec![
            bytes.to_string(),
            format!("{:.2}", rd.mean),
            format!("{:.2}", ring.mean),
            winner.to_string(),
        ]);
    }
    t.push_row(vec![
        "barrier".to_string(),
        format!("{:.2}", barrier.mean),
        String::new(),
        String::new(),
    ]);
    Some(t)
}

/// One machine's host and device MPI latency under each implementation
/// model (future work 4).
pub fn mpi_variant_table(machine: &str, c: &Campaign) -> Option<Table> {
    let m = doe_machines::by_name(machine)?;
    let mut t = Table::new(
        format!(
            "MPI implementation comparison on {} (future work 4; cf. [26])",
            m.name
        ),
        &[
            "Implementation",
            "Host-to-Host (us)",
            "Device-to-Device (us)",
        ],
    );
    let socket_pair = on_socket_pair(&m.topo)?;
    for variant in MpiVariant::ALL {
        let mpi = apply_variant(&m.mpi, variant);
        let h2h = osu_latency(
            &m.topo,
            &mpi,
            socket_pair,
            &c.osu,
            c.seed_for(m.name, variant.name()),
        )
        .remove(0)
        .one_way_us;
        let d2d_cell = if m.is_accelerated() && m.topo.device_count() >= 2 {
            let (da, db) = (DeviceId(0), DeviceId(1));
            let cores = device_pair_cores(&m.topo, da, db);
            let lat = osu_latency_device(
                &m.topo,
                &mpi,
                cores,
                (da, db),
                &c.osu,
                c.seed_for(m.name, variant.name()) ^ 0xD2D,
            )
            .remove(0)
            .one_way_us;
            doe_report::pm_summary(&lat)
        } else {
            "-".to_string()
        };
        t.push_row(vec![
            variant.name().to_string(),
            doe_report::pm_summary(&h2h),
            d2d_cell,
        ]);
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internode_table_has_monotone_latency() {
        let t = internode_latency_table(1);
        assert_eq!(t.rows.len(), 6);
        let lats: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[2].parse::<f64>().expect("latency cell"))
            .collect();
        for w in lats.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "{lats:?}");
        }
    }

    #[test]
    fn contention_series_degrades_monotonically() {
        let series = contention_series(2, 6);
        assert_eq!(series.len(), 7);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.01, "{series:?}");
        }
        // Meaningful degradation by 6 background flows.
        assert!(series[6].1 < series[0].1 / 3.0);
    }

    #[test]
    fn placement_study_orders_as_expected() {
        let rows = placement_study(3, 8, 1 << 20);
        assert_eq!(rows.len(), 2);
        let (packed_quiet, packed_noisy) = (rows[0].1, rows[0].2);
        let (spread_quiet, spread_noisy) = (rows[1].1, rows[1].2);
        // Spread costs more than packed, quiet or noisy.
        assert!(spread_quiet > packed_quiet);
        // Noise hurts the spread job (global links) far more than the
        // packed one (intra-group links are unaffected).
        assert!(spread_noisy > spread_quiet * 1.5);
        assert!(packed_noisy < packed_quiet * 1.1);
    }

    #[test]
    fn collectives_table_shows_a_crossover() {
        let t = collectives_table();
        let winners: Vec<&str> = t
            .rows
            .iter()
            .filter(|r| r.len() == 4 && !r[3].is_empty())
            .map(|r| r[3].as_str())
            .collect();
        assert!(winners.contains(&"recursive-doubling"));
        assert!(winners.contains(&"ring"));
    }

    #[test]
    fn intranode_collectives_cross_over() {
        let t = intranode_collectives_table("Manzano", &Campaign::quick()).expect("machine");
        let winners: Vec<&str> = t
            .rows
            .iter()
            .filter(|r| !r[3].is_empty())
            .map(|r| r[3].as_str())
            .collect();
        assert!(winners.contains(&"recursive-doubling"), "{winners:?}");
        assert!(winners.contains(&"ring"), "{winners:?}");
    }

    #[test]
    fn vendor_table_covers_the_three_extensions() {
        let t = cpu_vendor_table(&Campaign::quick());
        assert_eq!(t.rows.len(), 3);
        assert!(t.to_ascii().contains("A64FX"));
        assert!(t.title.contains("NOT paper data"));
    }

    #[test]
    fn variant_table_separates_rma_from_staged_on_summit() {
        let t = mpi_variant_table("Summit", &Campaign::quick()).expect("machine");
        assert_eq!(t.rows.len(), 4);
        let cell = |impl_name: &str| -> f64 {
            let row = t
                .rows
                .iter()
                .find(|r| r[0].contains(impl_name))
                .expect("row");
            row[2]
                .split_whitespace()
                .next()
                .expect("mean")
                .parse()
                .expect("numeric")
        };
        // GDR-style stacks beat the staged stacks by several x on device
        // latency — the [26] observation.
        assert!(cell("mvapich2-gdr") * 2.0 < cell("spectrum-mpi"));
        assert!(cell("cray-mpich") < cell("openmpi+ucx"));
    }
}
