//! Per-machine cost decompositions: where every table number comes from.
//!
//! A reference tool should not just print numbers — it should show its
//! work. `doebench explain <machine>` renders the model algebra for one
//! machine next to the paper's published values, straight from the same
//! parameters the simulator executes.

use std::fmt::Write as _;

use doe_machines::{paper, Machine};
use doe_memmodel::PlacementQuality;
use doe_mpi::DevicePath;
use doe_topo::{LinkClass, Vertex};

fn line(out: &mut String, s: impl AsRef<str>) {
    let _ = writeln!(out, "{}", s.as_ref());
}

fn explain_cpu(m: &Machine) -> String {
    let mut out = String::new();
    let p = paper::table4_row(m.name);
    line(
        &mut out,
        format!("## {} — Table 4 decomposition\n", m.table_label()),
    );
    let mem = &m.host_mem;
    let single = mem.raw_sustained_bw(PlacementQuality::single());
    line(
        &mut out,
        format!(
            "single-thread BW = per-core concurrency limit = {:.2} GB/s{}",
            single,
            p.map(|p| format!("   (paper: {:.2})", p.single.0))
                .unwrap_or_default()
        ),
    );
    let cores = m.topo.core_count() as u32;
    let all = mem.raw_sustained_bw(PlacementQuality::all_cores(cores));
    line(
        &mut out,
        format!(
            "all-thread BW   = min({} cores x {:.2}, {:.1} peak x {:.3} eff x {:.3} cache-mode) = {:.2} GB/s{}",
            cores,
            mem.per_core_bw_gb_s,
            mem.peak_bw_gb_s,
            mem.sustained_efficiency,
            mem.cache_mode_penalty,
            all,
            p.map(|p| format!("   (paper: {:.2})", p.all.0)).unwrap_or_default()
        ),
    );
    let on_socket =
        m.mpi.send_overhead.as_us() + m.mpi.shm_latency.as_us() + m.mpi.recv_overhead.as_us();
    line(
        &mut out,
        format!(
            "on-socket MPI   = send {:.3} + shm {:.3} + recv {:.3} = {:.2} us{}",
            m.mpi.send_overhead.as_us(),
            m.mpi.shm_latency.as_us(),
            m.mpi.recv_overhead.as_us(),
            on_socket,
            p.map(|p| format!("   (paper: {:.2})", p.on_socket.0))
                .unwrap_or_default()
        ),
    );
    let extra = if m.topo.sockets.len() > 1 {
        m.topo
            .route(
                Vertex::Numa(m.topo.numa_domains[0].id),
                Vertex::Numa(m.topo.numa_domains[1].id),
            )
            .map(|r| r.total_latency().as_us())
            .unwrap_or(0.0)
    } else {
        m.mpi.intra_numa_distance.as_us()
    };
    let kind = if m.topo.sockets.len() > 1 {
        "inter-socket hop"
    } else {
        "on-die mesh crossing (core 0 -> core N-1)"
    };
    line(
        &mut out,
        format!(
            "on-node MPI     = on-socket + {kind} {:.2} = {:.2} us{}",
            extra,
            on_socket + extra,
            p.map(|p| format!("   (paper: {:.2})", p.on_node.0))
                .unwrap_or_default()
        ),
    );
    out
}

fn explain_gpu(m: &Machine) -> String {
    let mut out = String::new();
    let model = &m.gpu_models[0];
    let p5 = paper::table5_row(m.name);
    let p6 = paper::table6_row(m.name);
    line(
        &mut out,
        format!("## {} — Tables 5/6 decomposition\n", m.table_label()),
    );
    line(
        &mut out,
        format!(
            "device BW  = {:.1} peak x {:.4} sustained = {:.2} GB/s{}",
            model.hbm.peak_bw_gb_s,
            model.hbm.sustained_efficiency,
            model.stream_bw(doe_memmodel::StreamOp::Triad),
            p5.map(|p| format!("   (paper: {:.2})", p.device_bw.0))
                .unwrap_or_default()
        ),
    );
    line(
        &mut out,
        format!(
            "launch     = driver submit path = {:.2} us{}",
            model.launch_overhead.as_us(),
            p6.map(|p| format!("   (paper: {:.2})", p.launch.0))
                .unwrap_or_default()
        ),
    );
    line(
        &mut out,
        format!(
            "wait       = empty-queue device synchronize = {:.2} us{}",
            model.sync_overhead.as_us(),
            p6.map(|p| format!("   (paper: {:.2})", p.wait.0))
                .unwrap_or_default()
        ),
    );
    let dev = m.topo.devices[0].id;
    let numa = m.topo.device(dev).expect("device").local_numa;
    if let Some(host_link) = m.topo.direct_link(Vertex::Numa(numa), Vertex::Device(dev)) {
        line(
            &mut out,
            format!(
                "H2D/D2H    = launch {:.2} + DMA setup {:.2} + {} link {:.2} + stream-sync {:.2} = {:.2} us{}",
                model.launch_overhead.as_us(),
                model.copy_setup_host.as_us(),
                host_link.kind.label(),
                host_link.latency.as_us(),
                model.stream_sync_overhead.as_us(),
                model.launch_overhead.as_us()
                    + model.copy_setup_host.as_us()
                    + host_link.latency.as_us()
                    + model.stream_sync_overhead.as_us(),
                p6.map(|p| format!("   (paper: {:.2})", p.hd_latency.0)).unwrap_or_default()
            ),
        );
        line(
            &mut out,
            format!(
                "H2D/D2H BW = {} link bandwidth = {:.2} GB/s{}",
                host_link.kind.label(),
                host_link.bandwidth_gb_s,
                p6.map(|p| format!("   (paper: {:.2})", p.hd_bandwidth.0))
                    .unwrap_or_default()
            ),
        );
    }
    for (class, (da, db)) in m.topo.representative_pairs() {
        let route = m
            .topo
            .route(Vertex::Device(da), Vertex::Device(db))
            .expect("routable");
        let hops: Vec<String> = route
            .links
            .iter()
            .map(|l| format!("{} {:.2}", l.kind.label(), l.latency.as_us()))
            .collect();
        let total = model.launch_overhead.as_us()
            + model.copy_setup_peer.as_us()
            + route.total_latency().as_us()
            + model.stream_sync_overhead.as_us();
        let idx = match class {
            LinkClass::A => 0,
            LinkClass::B => 1,
            LinkClass::C => 2,
            LinkClass::D => 3,
        };
        let cite = p6
            .and_then(|p| p.d2d[idx])
            .map(|(mean, _)| format!("   (paper: {mean:.2})"))
            .unwrap_or_default();
        line(
            &mut out,
            format!(
                "D2D {class}      = launch {:.2} + peer setup {:.2} + [{}] + sync {:.2} = {:.2} us{}",
                model.launch_overhead.as_us(),
                model.copy_setup_peer.as_us(),
                hops.join(" + "),
                model.stream_sync_overhead.as_us(),
                total,
                cite
            ),
        );
    }
    let h2h = m.mpi.send_overhead.as_us() + m.mpi.shm_latency.as_us() + m.mpi.recv_overhead.as_us();
    line(
        &mut out,
        format!(
            "host MPI   = send {:.3} + shm {:.3} + recv {:.3} = {:.2} us{}",
            m.mpi.send_overhead.as_us(),
            m.mpi.shm_latency.as_us(),
            m.mpi.recv_overhead.as_us(),
            h2h,
            p5.map(|p| format!("   (paper: {:.2})", p.host_to_host.0))
                .unwrap_or_default()
        ),
    );
    match m.mpi.device_path {
        DevicePath::Rma { extra_overhead } => {
            let d2d =
                m.mpi.send_overhead.as_us() + extra_overhead.as_us() + m.mpi.recv_overhead.as_us();
            line(
                &mut out,
                format!(
                    "device MPI = GPU-aware RMA: send {:.3} + doorbell {:.3} + recv {:.3} = {:.2} us (flat across classes){}",
                    m.mpi.send_overhead.as_us(),
                    extra_overhead.as_us(),
                    m.mpi.recv_overhead.as_us(),
                    d2d,
                    p5.and_then(|p| p.d2d[0])
                        .map(|(mean, _)| format!("   (paper: {mean:.2})"))
                        .unwrap_or_default()
                ),
            );
        }
        DevicePath::Staged {
            per_stage_overhead,
            pipeline_efficiency,
        } => {
            line(
                &mut out,
                format!(
                    "device MPI = host-staged pipeline: 3 stages x {:.2} us + D2H/host/H2D hops (pipeline eff {:.2})",
                    per_stage_overhead.as_us(),
                    pipeline_efficiency
                ),
            );
        }
    }
    out
}

/// Render the cost decomposition for a machine, or `None` if unknown.
pub fn machine_report(name: &str) -> Option<String> {
    let m = doe_machines::by_name(name)?;
    Some(if m.is_accelerated() {
        explain_gpu(&m)
    } else {
        explain_cpu(&m)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_report_shows_the_algebra() {
        let r = machine_report("Theta").expect("machine");
        assert!(r.contains("94. Theta"));
        assert!(r.contains("cache-mode"));
        assert!(r.contains("(paper: 119.72)"));
        assert!(r.contains("on-die mesh crossing"));
    }

    #[test]
    fn gpu_report_decomposes_every_metric() {
        let r = machine_report("Frontier").expect("machine");
        for needle in [
            "1. Frontier",
            "device BW",
            "launch",
            "H2D/D2H",
            "D2D A",
            "D2D D",
            "GPU-aware RMA",
            "(paper: 12.91)",
        ] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
    }

    #[test]
    fn staged_machines_describe_the_pipeline() {
        let r = machine_report("Summit").expect("machine");
        assert!(r.contains("host-staged pipeline"));
        assert!(r.contains("X-Bus"));
    }

    #[test]
    fn unknown_machine_is_none() {
        assert!(machine_report("nonesuch").is_none());
    }
}
