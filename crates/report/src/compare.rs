//! Paper-vs-measured comparison cells.

use std::fmt;

/// A published reference value paired with a simulated measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Comparison {
    /// The paper's mean.
    pub paper: f64,
    /// Our simulated mean.
    pub measured: f64,
}

impl Comparison {
    /// Pair a paper value with a measurement.
    pub fn new(paper: f64, measured: f64) -> Self {
        Comparison { paper, measured }
    }

    /// `measured / paper`; infinite when the paper value is zero.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.measured / self.paper
        }
    }

    /// Signed percentage deviation of measured from paper.
    pub fn pct_delta(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }

    /// True if the measurement is within `tol` relative tolerance.
    pub fn within(&self, tol: f64) -> bool {
        (self.ratio() - 1.0).abs() <= tol
    }
}

impl fmt::Display for Comparison {
    /// `paper → measured (+x.x%)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} → {:.2} ({:+.1}%)",
            self.paper,
            self.measured,
            self.pct_delta()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratio_and_delta() {
        let c = Comparison::new(10.0, 11.0);
        assert!((c.ratio() - 1.1).abs() < 1e-12);
        assert!((c.pct_delta() - 10.0).abs() < 1e-9);
        assert!(c.within(0.12));
        assert!(!c.within(0.05));
    }

    #[test]
    fn zero_paper_value() {
        assert_eq!(Comparison::new(0.0, 0.0).ratio(), 1.0);
        assert!(Comparison::new(0.0, 1.0).ratio().is_infinite());
    }

    #[test]
    fn display_format() {
        let c = Comparison::new(12.91, 12.75);
        assert_eq!(c.to_string(), "12.91 → 12.75 (-1.2%)");
    }

    proptest! {
        #[test]
        fn prop_within_is_symmetric_around_exact(paper in 0.01f64..1e6) {
            let c = Comparison::new(paper, paper);
            prop_assert!(c.within(0.0));
            prop_assert_eq!(c.pct_delta(), 0.0);
        }
    }
}
