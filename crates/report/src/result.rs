//! Structured table results and the single render path.
//!
//! The table builders in `doebench` used to hand back a stringly
//! [`Table`] and let each CLI subcommand pick a renderer; the daemon
//! needs the *values* (means, sigmas, units) so cached cells can be
//! re-rendered into any format without re-running anything. This module
//! is that contract: a [`TableResult`] keeps typed cells
//! ([`CellValue`]), per-column [`Unit`]s, and the citation keys its
//! text cells reference, and [`render`] is the one place any surface —
//! CLI, daemon, report bundle — turns it into ascii / markdown / csv /
//! json.
//!
//! Rendering is a pure function of the value, so a `TableResult`
//! assembled from cached cells renders byte-identically to one from a
//! cold run — the property the daemon's cache-hit contract tests pin.

use doe_benchlib::Summary;

use crate::json::Json;
use crate::pm_summary;
use crate::table::Table;

/// Physical unit of a column, carried for API consumers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless / textual.
    None,
    /// Gigabytes per second (the paper's bandwidth columns).
    GbPerS,
    /// Microseconds (the paper's latency columns).
    Micros,
    /// Bytes (message-size columns).
    Bytes,
}

impl Unit {
    /// Unit label used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::None => "",
            Unit::GbPerS => "GB/s",
            Unit::Micros => "us",
            Unit::Bytes => "B",
        }
    }
}

/// One column: header name plus unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Header text (exactly the paper's column headers).
    pub name: String,
    /// Unit of the column's numeric cells.
    pub unit: Unit,
}

/// One typed cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellValue {
    /// Literal text (row labels, citation strings).
    Text(String),
    /// A `mean ± σ` statistic.
    Stat(Summary),
    /// A `min–max` range (Table 7 cells).
    Range {
        /// Smallest pooled mean.
        min: f64,
        /// Largest pooled mean.
        max: f64,
    },
    /// No value for this cell (e.g. absent link class).
    Missing,
}

impl CellValue {
    /// The display string — exactly what the legacy tables printed.
    pub fn display(&self) -> String {
        match self {
            CellValue::Text(s) => s.clone(),
            CellValue::Stat(s) => pm_summary(s),
            CellValue::Range { min, max } => format!("{min:.2}-{max:.2}"),
            CellValue::Missing => String::new(),
        }
    }

    fn to_json(&self) -> Json {
        match self {
            CellValue::Text(s) => Json::s(s.clone()),
            CellValue::Stat(s) => Json::obj([
                ("mean", Json::Num(s.mean)),
                ("std", Json::Num(s.std)),
                ("n", Json::Num(s.n as f64)),
                ("min", Json::Num(s.min)),
                ("max", Json::Num(s.max)),
                ("median", Json::Num(s.median)),
                ("ci95", Json::Num(s.ci95_half_width)),
            ]),
            CellValue::Range { min, max } => {
                Json::obj([("min", Json::Num(*min)), ("max", Json::Num(*max))])
            }
            CellValue::Missing => Json::Null,
        }
    }
}

/// One row: the cells (first cell is the row label) plus the machine the
/// row depends on, which is what the daemon's per-machine cache
/// invalidation keys off.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Machine this row was computed from, if any.
    pub machine: Option<String>,
    /// Cells in column order.
    pub cells: Vec<CellValue>,
}

impl ResultRow {
    /// The row label (first cell's display string).
    pub fn label(&self) -> String {
        self.cells
            .first()
            .map(CellValue::display)
            .unwrap_or_default()
    }
}

/// A fully structured table: what `table4::run` & friends now return the
/// renderable essence of.
#[derive(Clone, Debug, PartialEq)]
pub struct TableResult {
    /// Stable identifier (`"table4"`, `"sweep"`, …).
    pub id: String,
    /// Table caption, exactly as printed.
    pub title: String,
    /// Columns with units.
    pub columns: Vec<Column>,
    /// Rows.
    pub rows: Vec<ResultRow>,
    /// Bracketed citation keys (`"[13]"`, …) referenced by text cells,
    /// sorted and deduplicated.
    pub citations: Vec<String>,
}

impl TableResult {
    /// An empty result with id and title.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        TableResult {
            id: id.into(),
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            citations: Vec::new(),
        }
    }

    /// Append a column.
    pub fn push_column(&mut self, name: impl Into<String>, unit: Unit) {
        self.columns.push(Column {
            name: name.into(),
            unit,
        });
    }

    /// Append a row and harvest citation keys from its text cells.
    pub fn push_row(&mut self, machine: Option<&str>, cells: Vec<CellValue>) {
        for c in &cells {
            if let CellValue::Text(s) = c {
                extract_citations(s, &mut self.citations);
            }
        }
        self.rows.push(ResultRow {
            machine: machine.map(str::to_string),
            cells,
        });
    }

    /// Lower to the stringly [`Table`] (the legacy model all three text
    /// renderers consume). Display strings are identical to what the
    /// pre-refactor builders pushed, so ascii/markdown/csv output is
    /// byte-identical.
    pub fn to_table(&self) -> Table {
        let headers: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        let mut t = Table::new(self.title.clone(), &headers);
        for row in &self.rows {
            t.push_row(row.cells.iter().map(CellValue::display).collect());
        }
        t
    }

    /// Structured JSON rendering (the daemon's response payload).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::s(self.id.clone())),
            ("title", Json::s(self.title.clone())),
            (
                "columns",
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("name", Json::s(c.name.clone())),
                                ("unit", Json::s(c.unit.as_str())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                (
                                    "machine",
                                    r.machine.clone().map(Json::Str).unwrap_or(Json::Null),
                                ),
                                (
                                    "cells",
                                    Json::Arr(r.cells.iter().map(CellValue::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "citations",
                Json::Arr(self.citations.iter().cloned().map(Json::Str).collect()),
            ),
        ])
    }
}

/// Output format of the unified render path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Fixed-width terminal table (the CLI default).
    Ascii,
    /// GitHub-flavoured markdown.
    Markdown,
    /// RFC-4180-ish CSV.
    Csv,
    /// Canonical JSON (the daemon default).
    Json,
}

impl Format {
    /// Parse a format name (`ascii`, `md`, `markdown`, `csv`, `json`).
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "ascii" | "text" => Some(Format::Ascii),
            "md" | "markdown" => Some(Format::Markdown),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            _ => None,
        }
    }
}

/// The one render path: any structured table, any format.
pub fn render(t: &TableResult, f: Format) -> String {
    match f {
        Format::Ascii => t.to_table().to_ascii(),
        Format::Markdown => t.to_table().to_markdown(),
        Format::Csv => t.to_table().to_csv(),
        Format::Json => t.to_json().canonical(),
    }
}

/// Harvest bracketed citation keys (`[13]`, `[4]`) from a cell string
/// into `out`, keeping it sorted and deduplicated.
pub fn extract_citations(text: &str, out: &mut Vec<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(open) = bytes[i..].iter().position(|&b| b == b'[') {
        let start = i + open;
        let Some(close) = bytes[start + 1..].iter().position(|&b| b == b']') else {
            return;
        };
        let end = start + 1 + close;
        let inner = &text[start + 1..end];
        if !inner.is_empty() && inner.bytes().all(|b| b.is_ascii_digit()) {
            let key = format!("[{inner}]");
            if let Err(pos) = out.binary_search(&key) {
                out.insert(pos, key);
            }
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(mean: f64, std: f64) -> Summary {
        Summary {
            n: 10,
            mean,
            std,
            min: mean - std,
            max: mean + std,
            median: mean,
            ci95_half_width: std / 2.0,
        }
    }

    fn sample() -> TableResult {
        let mut t = TableResult::new("demo", "Table X: demo");
        t.push_column("Rank/Name", Unit::None);
        t.push_column("Single", Unit::GbPerS);
        t.push_column("Peak", Unit::GbPerS);
        t.push_row(
            Some("Frontier"),
            vec![
                CellValue::Text("1. Frontier".into()),
                CellValue::Stat(stat(13.45, 0.02)),
                CellValue::Text("281.50 [13]".into()),
            ],
        );
        t
    }

    #[test]
    fn display_matches_legacy_cell_formats() {
        assert_eq!(
            CellValue::Stat(stat(12.916, 0.021)).display(),
            "12.92 ± 0.02"
        );
        assert_eq!(
            CellValue::Range {
                min: 0.44,
                max: 0.5
            }
            .display(),
            "0.44-0.50"
        );
        assert_eq!(CellValue::Missing.display(), "");
    }

    #[test]
    fn render_paths_agree_with_table_renderers() {
        let t = sample();
        let legacy = t.to_table();
        assert_eq!(render(&t, Format::Ascii), legacy.to_ascii());
        assert_eq!(render(&t, Format::Markdown), legacy.to_markdown());
        assert_eq!(render(&t, Format::Csv), legacy.to_csv());
    }

    #[test]
    fn json_rendering_is_canonical_and_typed() {
        let s = render(&sample(), Format::Json);
        assert!(s.contains(r#""id":"demo""#));
        assert!(s.contains(r#""unit":"GB/s""#));
        assert!(s.contains(r#""mean":13.45"#));
        // Canonical: reparse and re-render byte-stable.
        assert_eq!(crate::json::parse(&s).unwrap().canonical(), s);
    }

    #[test]
    fn citations_harvested_sorted_unique() {
        let mut t = sample();
        t.push_row(
            None,
            vec![CellValue::Text("> 450 [4] and [13] again".into())],
        );
        assert_eq!(t.citations, vec!["[13]".to_string(), "[4]".to_string()]);
    }

    #[test]
    fn non_numeric_brackets_ignored() {
        let mut out = Vec::new();
        extract_citations("(datasheet) [] [a3] -", &mut out);
        assert!(out.is_empty());
    }
}
