//! Table and figure rendering with paper-reference comparison.
//!
//! The suite's deliverable is the paper's tables regenerated from
//! simulation. This crate owns the presentation layer: a small [`Table`]
//! model with ASCII / Markdown / CSV renderers, the `mean ± σ` cell
//! format the paper uses, and [`Comparison`] cells that show
//! paper-vs-measured deltas for EXPERIMENTS.md.

pub mod chart;
pub mod compare;
pub mod json;
pub mod result;
pub mod table;

pub use chart::{LineChart, Series};
pub use compare::Comparison;
pub use json::Json;
pub use result::{render, CellValue, Column, Format, ResultRow, TableResult, Unit};
pub use table::Table;

/// Format a mean/σ pair the way the paper's tables print them.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.2} ± {std:.2}")
}

/// Format a [`doe_benchlib::Summary`] the same way.
pub fn pm_summary(s: &doe_benchlib::Summary) -> String {
    pm(s.mean, s.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_format() {
        assert_eq!(pm(12.916, 0.021), "12.92 ± 0.02");
        assert_eq!(pm(0.4449, 0.0), "0.44 ± 0.00");
    }
}
