//! A small SVG line-chart renderer for sweep curves.
//!
//! The paper's data is tabular, but the campaigns behind it are curves
//! (message-size sweeps, size sweeps, contention series). This renderer
//! produces self-contained SVG documents — no external tooling — for
//! embedding in docs or viewing in a browser.

use std::fmt::Write as _;

/// Chart canvas width in pixels.
const WIDTH: f64 = 720.0;
/// Chart canvas height in pixels.
const HEIGHT: f64 = 420.0;
/// Margin reserved for axes and labels.
const MARGIN: f64 = 60.0;
/// Series stroke colours, cycled.
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; must be finite, and positive on log axes.
    pub points: Vec<(f64, f64)>,
}

/// A line chart with optional logarithmic axes.
#[derive(Clone, Debug)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Series to plot.
    pub series: Vec<Series>,
    /// Base-10 logarithmic x axis.
    pub log_x: bool,
    /// Base-10 logarithmic y axis.
    pub log_y: bool,
}

impl LineChart {
    /// A linear-axis chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_x: false,
            log_y: false,
        }
    }

    /// Add a series.
    pub fn push_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            name: name.into(),
            points,
        });
    }

    fn tx(&self, v: f64) -> f64 {
        if self.log_x {
            v.log10()
        } else {
            v
        }
    }

    fn ty(&self, v: f64) -> f64 {
        if self.log_y {
            v.log10()
        } else {
            v
        }
    }

    /// Render to a standalone SVG document.
    ///
    /// # Panics
    /// Panics if there are no plottable points, or if a log axis receives
    /// a non-positive value.
    pub fn to_svg(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!pts.is_empty(), "chart has no points");
        for &(x, y) in &pts {
            assert!(x.is_finite() && y.is_finite(), "non-finite point");
            if self.log_x {
                assert!(x > 0.0, "log x axis requires positive values");
            }
            if self.log_y {
                assert!(y > 0.0, "log y axis requires positive values");
            }
        }
        let (mut x0, mut x1) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
            (lo.min(self.tx(x)), hi.max(self.tx(x)))
        });
        let (mut y0, mut y1) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
            (lo.min(self.ty(y)), hi.max(self.ty(y)))
        });
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        let sx = |v: f64| MARGIN + (self.tx(v) - x0) / (x1 - x0) * (WIDTH - 2.0 * MARGIN);
        let sy = |v: f64| HEIGHT - MARGIN - (self.ty(v) - y0) / (y1 - y0) * (HEIGHT - 2.0 * MARGIN);

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{HEIGHT}\" \
             viewBox=\"0 0 {WIDTH} {HEIGHT}\" font-family=\"sans-serif\" font-size=\"12\">"
        );
        let _ = writeln!(
            svg,
            "<rect width=\"{WIDTH}\" height=\"{HEIGHT}\" fill=\"white\"/>"
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" font-size=\"15\">{}</text>",
            WIDTH / 2.0,
            esc(&self.title)
        );
        // Axes.
        let _ = writeln!(
            svg,
            "<line x1=\"{m}\" y1=\"{b}\" x2=\"{r}\" y2=\"{b}\" stroke=\"black\"/>\
             <line x1=\"{m}\" y1=\"{t}\" x2=\"{m}\" y2=\"{b}\" stroke=\"black\"/>",
            m = MARGIN,
            r = WIDTH - MARGIN,
            t = MARGIN,
            b = HEIGHT - MARGIN
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>",
            WIDTH / 2.0,
            HEIGHT - 16.0,
            esc(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" text-anchor=\"middle\" transform=\"rotate(-90 16 {})\">{}</text>",
            HEIGHT / 2.0,
            HEIGHT / 2.0,
            esc(&self.y_label)
        );
        // Ticks: five per axis, in data units.
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let gx = MARGIN + (WIDTH - 2.0 * MARGIN) * i as f64 / 4.0;
            let label = if self.log_x { 10f64.powf(fx) } else { fx };
            let _ = writeln!(
                svg,
                "<text x=\"{gx}\" y=\"{}\" text-anchor=\"middle\" font-size=\"10\">{}</text>",
                HEIGHT - MARGIN + 16.0,
                fmt_tick(label)
            );
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let gy = HEIGHT - MARGIN - (HEIGHT - 2.0 * MARGIN) * i as f64 / 4.0;
            let label = if self.log_y { 10f64.powf(fy) } else { fy };
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{gy}\" text-anchor=\"end\" font-size=\"10\">{}</text>",
                MARGIN - 6.0,
                fmt_tick(label)
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            if s.points.is_empty() {
                continue;
            }
            let color = COLORS[i % COLORS.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" points=\"{}\"/>",
                path.join(" ")
            );
            // Legend entry.
            let ly = MARGIN + 8.0 + 18.0 * i as f64;
            let _ = writeln!(
                svg,
                "<line x1=\"{x}\" y1=\"{ly}\" x2=\"{x2}\" y2=\"{ly}\" stroke=\"{color}\" stroke-width=\"2\"/>\
                 <text x=\"{tx}\" y=\"{ty}\" font-size=\"11\">{name}</text>",
                x = WIDTH - MARGIN - 150.0,
                x2 = WIDTH - MARGIN - 126.0,
                tx = WIDTH - MARGIN - 120.0,
                ty = ly + 4.0,
                name = esc(&s.name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-2 {
        format!("{v:.0e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LineChart {
        let mut c = LineChart::new("latency vs size", "bytes", "us");
        c.log_x = true;
        c.push_series("on-socket", vec![(1.0, 0.2), (1024.0, 0.4), (1e6, 10.0)]);
        c.push_series("on-node", vec![(1.0, 0.4), (1024.0, 0.7), (1e6, 12.0)]);
        c
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = sample().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("on-socket"));
        assert!(svg.contains("latency vs size"));
        // Tag balance for elements we open/close explicitly.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.push_series("s<1>", vec![(0.0, 1.0), (1.0, 2.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn degenerate_ranges_do_not_divide_by_zero() {
        let mut c = LineChart::new("flat", "x", "y");
        c.push_series("s", vec![(1.0, 5.0), (1.0, 5.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_chart_panics() {
        LineChart::new("e", "x", "y").to_svg();
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn log_axis_rejects_zero() {
        let mut c = LineChart::new("bad", "x", "y");
        c.log_x = true;
        c.push_series("s", vec![(0.0, 1.0)]);
        c.to_svg();
    }
}
