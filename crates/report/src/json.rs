//! A minimal JSON value with a canonical, byte-stable serialization.
//!
//! The query API keys its content-addressed cache on serialized queries,
//! so serialization must be *canonical*: two equal values always render
//! to the same bytes, and `parse(canonical(v)) == v` re-renders
//! byte-identically. The rules:
//!
//! * objects render with keys in lexicographic order (enforced by
//!   [`BTreeMap`] storage),
//! * no insignificant whitespace,
//! * numbers render via Rust's shortest-round-trip `f64` formatting
//!   (`Display`), which is a pure function of the value,
//! * strings escape only `"`, `\`, and control characters.
//!
//! Hand-rolled because the build environment has no crates.io access
//! (no serde); the subset implemented is full RFC 8259 minus non-finite
//! numbers, which JSON cannot represent anyway.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is canonical (sorted), not insertion.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render the canonical serialization.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Shortest-round-trip number rendering; non-finite values have no JSON
/// representation and render as `null`.
fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document (must be a single value plus whitespace).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Recursion guard: queries are shallow; anything deeper is hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("short \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_keys_and_strips_whitespace() {
        let v = parse(r#" { "b" : 1 , "a" : [ true , null , "x" ] } "#).unwrap();
        assert_eq!(v.canonical(), r#"{"a":[true,null,"x"],"b":1}"#);
    }

    #[test]
    fn reparse_is_byte_stable() {
        let cases = [
            r#"{"mean":13.45,"n":100,"std":0.5}"#,
            r#"[0.1,1e300,-0,123456789,"quote \" backslash \\ tab \t"]"#,
            r#"{"nested":{"deep":[[[1]]]},"s":"µs ± σ"}"#,
        ];
        for c in cases {
            let canon = parse(c).unwrap().canonical();
            let again = parse(&canon).unwrap().canonical();
            assert_eq!(canon, again, "input: {c}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::s("line\nbreak \"q\" \\ \u{1} 😀");
        let canon = v.canonical();
        assert_eq!(parse(&canon).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::s("😀"));
    }

    #[test]
    fn errors_carry_position() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("1e999").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(5.0).canonical(), "5");
        assert_eq!(Json::Num(-0.0).canonical(), "-0");
        assert_eq!(Json::Num(0.25).canonical(), "0.25");
    }
}
