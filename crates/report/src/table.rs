//! A minimal table model with three renderers.

use std::fmt::Write as _;

/// A rectangular table with a title, headers, and string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows; ragged rows are padded with empty cells when rendering.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    fn cell(row: &[String], i: usize) -> &str {
        row.get(i).map(String::as_str).unwrap_or("")
    }

    /// Fixed-width ASCII rendering for terminals.
    pub fn to_ascii(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let rule: String = w
            .iter()
            .map(|&n| "-".repeat(n + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            (0..w.len())
                .map(|i| format!(" {:<width$} ", Self::cell(cells, i), width = w[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{rule}");
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// GitHub-flavoured Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "**{}**", self.title);
        let _ = writeln!(out);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<&str> = (0..self.headers.len())
                .map(|i| Self::cell(row, i))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// RFC-4180-ish CSV rendering (quotes cells containing separators).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                (0..self.headers.len())
                    .map(|i| esc(Self::cell(row, i)))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Table X: demo", &["Machine", "Value"]);
        t.push_row(vec!["Frontier".into(), "1.51 ± 0.00".into()]);
        t.push_row(vec!["Summit".into(), "4.84 ± 0.01".into()]);
        t
    }

    #[test]
    fn ascii_aligns_columns() {
        let s = sample().to_ascii();
        assert!(s.contains("Table X: demo"));
        assert!(s.contains("Machine"));
        let lines: Vec<&str> = s.lines().collect();
        // All body lines have equal width.
        let body: Vec<&str> = lines.iter().skip(1).copied().collect();
        let lens: Vec<usize> = body.iter().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn markdown_has_header_separator() {
        let s = sample().to_markdown();
        assert!(s.contains("| Machine | Value |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| Frontier | 1.51 ± 0.00 |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let s = t.to_csv();
        assert!(s.contains("\"x,y\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn ragged_rows_pad() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.push_row(vec!["only".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| only |  |  |"));
    }
}
