//! The simulated-CPU backend: Table 4's "Memory Bandwidth" columns.
//!
//! Per "binary run", the campaign sweeps vector sizes and the Table 1
//! `OMP_*` combinations, times `inner_iters` repeats of each kernel on the
//! virtual clock, and reports the best single-thread and best all-thread
//! bandwidth at the largest size — exactly the paper's selection rule
//! ("the highest single and multicore memory bandwidth … chosen over all
//! the possible BabelStream operations for the largest vector size").
//!
//! Run-to-run variance is a common-mode factor per binary run (DVFS,
//! OS noise): one jitter draw scales every kernel in that run.

use doe_benchlib::{parallel_map_indexed, Samples, Summary};
use doe_memmodel::{MemDomainModel, StreamOp};
use doe_omp::{resolve_placement, EnvCombo};
use doe_simtime::{Clock, Jitter, SimDuration, SimRng};
use doe_topo::NodeTopology;

use crate::config::SweepConfig;

/// Results of a simulated CPU BabelStream campaign.
#[derive(Clone, Debug)]
pub struct CpuStreamReport {
    /// Best single-thread bandwidth (GB/s), mean ± σ over runs.
    pub single: Summary,
    /// Best all-thread bandwidth (GB/s), mean ± σ over runs.
    pub all: Summary,
    /// The winning kernel for the all-thread figure (from the final run).
    pub best_all_op: StreamOp,
    /// The winning environment combination (from the final run).
    pub best_all_combo: EnvCombo,
    /// Best all-thread bandwidth per vector size (final run) — the size
    /// sweep of Appendix B.2.
    pub curve: Vec<(u64, f64)>,
    /// Total virtual time the final run's campaign took.
    pub campaign_time: SimDuration,
}

/// Final-run bookkeeping: winning op/combo, the size curve, and the
/// campaign's virtual duration.
type LastRun = (StreamOp, EnvCombo, Vec<(u64, f64)>, SimDuration);

/// Run the campaign against a simulated host memory system.
pub fn run_sim_cpu(
    topo: &NodeTopology,
    mem: &MemDomainModel,
    run_jitter: Jitter,
    seed: u64,
    cfg: &SweepConfig,
) -> CpuStreamReport {
    assert!(cfg.reps > 0, "need at least one repetition");
    let sizes = cfg.sizes();
    let combos = EnvCombo::table1();

    // Each rep builds its own clock and RNG from the rep index, so reps
    // are independent and can run on any pool worker in any order.
    let per_rep = parallel_map_indexed(cfg.reps, |rep| {
        let mut rng = SimRng::stream(seed, &format!("babelstream-cpu/{}", topo.name), rep as u64);
        // Common-mode run factor.
        let factor = run_jitter.sample_scalar(1.0, &mut rng).max(0.05);
        let mut clock = Clock::new();

        let mut best_single = 0.0f64;
        let mut best_all = 0.0f64;
        let mut best_all_op = StreamOp::Copy;
        let mut best_all_combo = combos[0];
        let mut curve: Vec<(u64, f64)> = Vec::with_capacity(sizes.len());

        for &n in &sizes {
            let mut best_at_size = 0.0f64;
            for combo in &combos {
                let placement = resolve_placement(topo, combo);
                for &op in &StreamOp::ALL {
                    // Time inner_iters kernel invocations on the virtual
                    // clock, then derive bandwidth the way BabelStream
                    // does: bytes / best time. With a common-mode factor,
                    // every iteration in the run is identical.
                    let t_kernel = mem.kernel_time(op, n, placement) * (1.0 / factor)
                        + cfg.overhead_per_kernel;
                    for _ in 0..cfg.inner_iters {
                        clock.advance(t_kernel);
                    }
                    let bw = t_kernel.bandwidth_gb_s(op.reported_bytes(n));
                    if n == *sizes.last().expect("nonempty sizes") {
                        let single = placement.threads == 1;
                        if single && bw > best_single {
                            best_single = bw;
                        }
                        if !single && bw > best_all {
                            best_all = bw;
                            best_all_op = op;
                            best_all_combo = *combo;
                        }
                    }
                    if placement.threads != 1 && bw > best_at_size {
                        best_at_size = bw;
                    }
                }
            }
            curve.push((n, best_at_size));
        }
        let last: LastRun = (
            best_all_op,
            best_all_combo,
            curve,
            clock.now().since(doe_simtime::SimTime::ZERO),
        );
        (best_single, best_all, last)
    });

    let single_samples: Samples = per_rep.iter().map(|(single, _, _)| *single).collect();
    let all_samples: Samples = per_rep.iter().map(|(_, all, _)| *all).collect();
    let (best_all_op, best_all_combo, curve, campaign_time) = per_rep
        .into_iter()
        .map(|(_, _, last)| last)
        .next_back()
        .expect("at least one rep ran");
    CpuStreamReport {
        single: single_samples.summary(),
        all: all_samples.summary(),
        best_all_op,
        best_all_combo,
        curve,
        campaign_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_topo::{NodeBuilder, NumaId, SocketId};

    fn xeonish() -> (NodeTopology, MemDomainModel) {
        let topo = NodeBuilder::new("xeonish")
            .socket("CPU0")
            .socket("CPU1")
            .numa(SocketId(0))
            .numa(SocketId(1))
            .cores(NumaId(0), 24, 2)
            .cores(NumaId(1), 24, 2)
            .link(
                doe_topo::Vertex::Numa(NumaId(0)),
                doe_topo::Vertex::Numa(NumaId(1)),
                doe_topo::LinkKind::Upi,
                SimDuration::from_ns(130.0),
                41.6,
            )
            .build()
            .expect("valid");
        let mut mem = MemDomainModel::new("DDR4", 281.5, 13.0);
        mem.sustained_efficiency = 0.85;
        (topo, mem)
    }

    #[test]
    fn single_and_all_land_near_model_targets() {
        let (topo, mem) = xeonish();
        let rep = run_sim_cpu(
            &topo,
            &mem,
            Jitter::relative(0.01),
            42,
            &SweepConfig::quick(),
        );
        // Single-thread: per-core limit 13 GB/s.
        assert!(
            (rep.single.mean - 13.0).abs() < 1.0,
            "single={}",
            rep.single.mean
        );
        // All threads: 281.5 * 0.85 ≈ 239 GB/s.
        assert!((rep.all.mean - 239.0).abs() < 15.0, "all={}", rep.all.mean);
        assert!(rep.all.std > 0.0, "jitter should produce nonzero sigma");
        assert!(rep.single.rel_std() < 0.1);
    }

    #[test]
    fn curve_rises_to_plateau() {
        let (topo, mem) = xeonish();
        let rep = run_sim_cpu(&topo, &mem, Jitter::NONE, 1, &SweepConfig::quick());
        let first = rep.curve.first().expect("curve nonempty").1;
        let last = rep.curve.last().expect("curve nonempty").1;
        assert!(
            last > first,
            "per-kernel overhead should depress small sizes: {first} vs {last}"
        );
        // Monotone non-decreasing.
        for w in rep.curve.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.999);
        }
    }

    #[test]
    fn zero_jitter_gives_zero_sigma() {
        let (topo, mem) = xeonish();
        let rep = run_sim_cpu(&topo, &mem, Jitter::NONE, 1, &SweepConfig::quick());
        // Identical runs; only float summation noise remains.
        assert!(rep.all.rel_std() < 1e-12, "std={}", rep.all.std);
        assert!(rep.single.rel_std() < 1e-12, "std={}", rep.single.std);
    }

    #[test]
    fn campaign_time_is_positive_and_deterministic() {
        let (topo, mem) = xeonish();
        let a = run_sim_cpu(
            &topo,
            &mem,
            Jitter::relative(0.02),
            9,
            &SweepConfig::quick(),
        );
        let b = run_sim_cpu(
            &topo,
            &mem,
            Jitter::relative(0.02),
            9,
            &SweepConfig::quick(),
        );
        assert!(a.campaign_time > SimDuration::ZERO);
        assert_eq!(a.all.mean, b.all.mean);
        assert_eq!(a.campaign_time, b.campaign_time);
    }

    #[test]
    fn smt_machines_prefer_a_bound_combo() {
        let (topo, mem) = xeonish();
        let rep = run_sim_cpu(&topo, &mem, Jitter::NONE, 1, &SweepConfig::quick());
        // With SMT penalties, the winner should use #cores, bound.
        assert!(rep.best_all_combo.is_bound());
    }
}
