//! Native memory-*latency* measurement: a dependent pointer chase.
//!
//! BabelStream answers "what is the realizable memory bandwidth?"; the
//! paper's other headline question is about latencies. This is the classic
//! lmbench-style load-to-use measurement: a random cyclic permutation is
//! chased so every load depends on the previous one, defeating prefetch
//! and overlap. Sweeping the working-set size walks the result through the
//! cache hierarchy (L1 → L2 → LLC → DRAM).
//!
//! dessan::allow(wall-clock): the native backend times this machine, not the simulation.

use std::time::Instant;

use doe_simtime::SimRng;

/// Configuration of a pointer-chase campaign.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Working-set sizes in bytes to sweep.
    pub sizes: Vec<usize>,
    /// Loads per timed measurement.
    pub loads: usize,
    /// Seed for the permutation shuffle.
    pub seed: u64,
}

impl ChaseConfig {
    /// A sweep from 16 KiB to 64 MiB by powers of four.
    pub fn sweep() -> Self {
        let mut sizes = Vec::new();
        let mut s = 16 * 1024;
        while s <= 64 * 1024 * 1024 {
            sizes.push(s);
            s *= 4;
        }
        ChaseConfig {
            sizes,
            loads: 2_000_000,
            seed: 0xC4A5E,
        }
    }

    /// A reduced configuration for tests.
    pub fn quick() -> Self {
        ChaseConfig {
            sizes: vec![16 * 1024, 4 * 1024 * 1024],
            loads: 200_000,
            seed: 0xC4A5E,
        }
    }
}

/// One point of the latency curve.
#[derive(Clone, Copy, Debug)]
pub struct ChasePoint {
    /// Working-set size in bytes.
    pub bytes: usize,
    /// Measured load-to-use latency in nanoseconds.
    pub ns_per_load: f64,
}

/// Build a single random cycle over `n` slots (Sattolo's algorithm), so a
/// chase visits every slot before repeating.
fn random_cycle(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SimRng::from_seed(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    // Sattolo: shuffle into a single n-cycle.
    for i in (1..n).rev() {
        let j = rng.below(i as u64) as usize; // j in [0, i)
        perm.swap(i, j);
    }
    // perm is a cyclic permutation in one-line form; convert to successor
    // form: next[perm[k]] = perm[(k+1) % n].
    let mut next = vec![0usize; n];
    for k in 0..n {
        next[perm[k]] = perm[(k + 1) % n];
    }
    next
}

/// Measure the load-to-use latency for each configured working-set size.
pub fn run_pointer_chase(cfg: &ChaseConfig) -> Vec<ChasePoint> {
    assert!(cfg.loads > 0, "need at least one load");
    cfg.sizes
        .iter()
        .map(|&bytes| {
            let slots = (bytes / std::mem::size_of::<usize>()).max(16);
            let chain = random_cycle(slots, cfg.seed);
            // Warm the working set and reach a steady position.
            let mut pos = 0usize;
            for _ in 0..slots {
                pos = chain[pos];
            }
            let t0 = Instant::now();
            for _ in 0..cfg.loads {
                pos = chain[pos];
            }
            let dt = t0.elapsed();
            // Keep the dependency chain alive.
            std::hint::black_box(pos);
            ChasePoint {
                bytes,
                ns_per_load: dt.as_nanos() as f64 / cfg.loads as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_a_single_loop_visiting_everything() {
        for n in [16usize, 64, 1000] {
            let next = random_cycle(n, 7);
            let mut seen = vec![false; n];
            let mut pos = 0;
            for _ in 0..n {
                assert!(!seen[pos], "revisited slot {pos} early (n={n})");
                seen[pos] = true;
                pos = next[pos];
            }
            assert_eq!(pos, 0, "must return to start after n steps");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn cycle_is_deterministic_per_seed() {
        assert_eq!(random_cycle(256, 1), random_cycle(256, 1));
        assert_ne!(random_cycle(256, 1), random_cycle(256, 2));
    }

    #[test]
    fn chase_produces_plausible_latencies() {
        let pts = run_pointer_chase(&ChaseConfig::quick());
        assert_eq!(pts.len(), 2);
        for p in &pts {
            // Anything from sub-ns (unrealistic but possible on tiny sets
            // with speculative hardware) to 1 µs covers every real machine.
            assert!(
                p.ns_per_load > 0.05 && p.ns_per_load < 1000.0,
                "{} B: {} ns",
                p.bytes,
                p.ns_per_load
            );
        }
        // The 4 MiB set cannot be faster than the 16 KiB (L1-resident) set.
        assert!(pts[1].ns_per_load >= pts[0].ns_per_load * 0.8);
    }

    #[test]
    #[should_panic(expected = "at least one load")]
    fn zero_loads_rejected() {
        run_pointer_chase(&ChaseConfig {
            sizes: vec![1024],
            loads: 0,
            seed: 1,
        });
    }
}
