//! The native backend: BabelStream on the machine this process runs on.
//!
//! Faithful to BabelStream 4.0's structure: three `f64` arrays initialized
//! to (0.1, 0.2, 0.0), `scalar = 0.4`, each timed iteration runs the five
//! kernels in order (Copy, Mul, Add, Triad, Dot), per-kernel times are
//! recorded, and the run is verified against the analytically-evolved
//! array values at the end.
//!
//! dessan::allow(wall-clock): the native backend times this machine, not the simulation.

use std::time::Instant;

use doe_benchlib::{Samples, Summary};
use doe_memmodel::StreamOp;
use doe_omp::NativeBackend;

/// Initial value of array `a`.
const INIT_A: f64 = 0.1;
/// Initial value of array `b`.
const INIT_B: f64 = 0.2;
/// Initial value of array `c`.
const INIT_C: f64 = 0.0;
/// The Triad/Mul scalar.
const SCALAR: f64 = 0.4;

/// Configuration for a native run.
#[derive(Clone, Copy, Debug)]
pub struct NativeStreamConfig {
    /// Vector length in `f64` elements.
    pub elems: usize,
    /// Timed iterations (BabelStream default: 100).
    pub iters: u32,
    /// Worker threads; `None` = all host parallelism.
    pub nthreads: Option<usize>,
}

impl NativeStreamConfig {
    /// A small, fast configuration for tests.
    pub fn quick() -> Self {
        NativeStreamConfig {
            elems: 64 * 1024,
            iters: 5,
            nthreads: Some(2),
        }
    }
}

/// Results of a native run.
#[derive(Clone, Debug)]
pub struct NativeStreamReport {
    /// Per-kernel best-iteration bandwidth (GB/s), BabelStream's headline.
    pub best_bw: Vec<(StreamOp, f64)>,
    /// Per-kernel bandwidth summary across iterations.
    pub per_op: Vec<(StreamOp, Summary)>,
    /// Threads used.
    pub nthreads: usize,
    /// Whether the final array contents matched the analytic expectation.
    pub verified: bool,
}

impl NativeStreamReport {
    /// The best bandwidth over all kernels — the paper's reported figure.
    pub fn best_overall(&self) -> (StreamOp, f64) {
        self.best_bw
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("five kernels ran")
    }
}

/// Run BabelStream natively.
pub fn run_native(cfg: &NativeStreamConfig) -> NativeStreamReport {
    assert!(cfg.elems > 0 && cfg.iters > 0, "empty native config");
    let backend = match cfg.nthreads {
        Some(n) => NativeBackend::new(n),
        None => NativeBackend::host_parallelism(),
    };
    let n = cfg.elems;
    let mut a = vec![INIT_A; n];
    let mut b = vec![INIT_B; n];
    let mut c = vec![INIT_C; n];

    let mut samples: Vec<Samples> = (0..5).map(|_| Samples::new()).collect();
    let mut dot_sink = 0.0f64;

    for _ in 0..cfg.iters {
        for (k, &op) in StreamOp::ALL.iter().enumerate() {
            let t0 = Instant::now();
            match op {
                StreamOp::Copy => kernel_copy(&backend, &a, &mut c),
                StreamOp::Mul => kernel_mul(&backend, &mut b, &c),
                StreamOp::Add => kernel_add(&backend, &a, &b, &mut c),
                StreamOp::Triad => kernel_triad(&backend, &mut a, &b, &c),
                StreamOp::Dot => dot_sink += kernel_dot(&backend, &a, &b),
            }
            let secs = t0.elapsed().as_secs_f64();
            let bw = op.reported_bytes(n as u64) as f64 / secs / 1e9;
            samples[k].push(bw);
        }
    }
    // Keep the reduction result alive so the optimizer cannot drop the loop.
    assert!(dot_sink.is_finite());

    let verified = verify(&a, &b, &c, cfg.iters);
    let per_op: Vec<(StreamOp, Summary)> = StreamOp::ALL
        .iter()
        .zip(&samples)
        .map(|(&op, s)| (op, s.summary()))
        .collect();
    let best_bw = per_op.iter().map(|(op, s)| (*op, s.max)).collect();
    NativeStreamReport {
        best_bw,
        per_op,
        nthreads: backend.nthreads(),
        verified,
    }
}

fn kernel_copy(be: &NativeBackend, a: &[f64], c: &mut [f64]) {
    let cp = as_send_ptr(c);
    be.parallel_for(a.len(), |r| {
        // SAFETY: `parallel_for`'s static schedule hands each worker a
        // distinct chunk of 0..len, so `r` is in bounds for `c` (same
        // length as `a`) and no other worker holds a slice overlapping it.
        let c = unsafe { cp.slice(r.clone()) };
        c.copy_from_slice(&a[r]);
    });
}

fn kernel_mul(be: &NativeBackend, b: &mut [f64], c: &[f64]) {
    let bp = as_send_ptr(b);
    be.parallel_for(c.len(), |r| {
        // SAFETY: chunks from `parallel_for` are disjoint and within
        // 0..c.len() == 0..b.len(); only this worker touches `b[r]`.
        let b = unsafe { bp.slice(r.clone()) };
        for (bi, &ci) in b.iter_mut().zip(&c[r]) {
            *bi = SCALAR * ci;
        }
    });
}

fn kernel_add(be: &NativeBackend, a: &[f64], b: &[f64], c: &mut [f64]) {
    let cp = as_send_ptr(c);
    be.parallel_for(a.len(), |r| {
        // SAFETY: chunks from `parallel_for` are disjoint and within
        // 0..a.len() == 0..c.len(); only this worker writes `c[r]`.
        let c = unsafe { cp.slice(r.clone()) };
        for ((ci, &ai), &bi) in c.iter_mut().zip(&a[r.clone()]).zip(&b[r]) {
            *ci = ai + bi;
        }
    });
}

fn kernel_triad(be: &NativeBackend, a: &mut [f64], b: &[f64], c: &[f64]) {
    let ap = as_send_ptr(a);
    be.parallel_for(b.len(), |r| {
        // SAFETY: chunks from `parallel_for` are disjoint and within
        // 0..b.len() == 0..a.len(); only this worker writes `a[r]`.
        let a = unsafe { ap.slice(r.clone()) };
        for ((ai, &bi), &ci) in a.iter_mut().zip(&b[r.clone()]).zip(&c[r]) {
            *ai = bi + SCALAR * ci;
        }
    });
}

fn kernel_dot(be: &NativeBackend, a: &[f64], b: &[f64]) -> f64 {
    be.parallel_reduce(
        a.len(),
        0.0,
        |r| {
            a[r.clone()]
                .iter()
                .zip(&b[r])
                .map(|(&x, &y)| x * y)
                .sum::<f64>()
        },
        |acc, part| acc + part,
    )
}

/// A `Send + Sync` wrapper for handing disjoint mutable chunks of one slice
/// to worker threads. Safety rests on the static schedule: `parallel_for`
/// chunks never overlap. Debug builds additionally log every handed-out
/// range and assert pairwise disjointness.
struct SendPtr {
    ptr: *mut f64,
    len: usize,
    /// Every range handed out so far (debug builds only), for the
    /// disjointness assertion in [`SendPtr::slice`].
    #[cfg(debug_assertions)]
    claims: std::sync::Mutex<Vec<std::ops::Range<usize>>>,
}
// SAFETY: the pointee outlives the parallel region (the kernels hold the
// slice's &mut for the whole call), and `slice`'s contract keeps handed-out
// chunks disjoint, so moving the wrapper to a worker cannot alias a &mut.
unsafe impl Send for SendPtr {}
// SAFETY: `&SendPtr` only exposes `slice`, whose contract guarantees the
// chunks obtained through it are disjoint across threads.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// # Safety
    /// `range` must be in bounds and disjoint from every other live slice handed out by this wrapper; the static schedule guarantees both, and debug builds assert them. The returned lifetime is deliberately unbound for the region's duration.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, range: std::ops::Range<usize>) -> &mut [f64] {
        debug_assert!(
            range.start <= range.end && range.end <= self.len,
            "chunk {range:?} escapes the slice (len {})",
            self.len
        );
        #[cfg(debug_assertions)]
        {
            let mut claims = self.claims.lock().unwrap_or_else(|e| e.into_inner());
            for prior in claims.iter() {
                debug_assert!(
                    range.end <= prior.start || prior.end <= range.start,
                    "chunk {range:?} overlaps previously handed-out {prior:?}"
                );
            }
            claims.push(range.clone());
        }
        // SAFETY: the bounds assertion keeps the pointer arithmetic inside
        // the allocation; the caller's contract (asserted above via
        // `claims` in debug builds) rules out overlapping live slices.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }
}

fn as_send_ptr(s: &mut [f64]) -> SendPtr {
    SendPtr {
        ptr: s.as_mut_ptr(),
        len: s.len(),
        #[cfg(debug_assertions)]
        claims: std::sync::Mutex::new(Vec::new()),
    }
}

/// BabelStream-style verification: because every array holds a uniform
/// value, the whole run reduces to scalar recurrences we can replay.
fn verify(a: &[f64], b: &[f64], c: &[f64], iters: u32) -> bool {
    let (mut ea, mut eb, mut ec) = (INIT_A, INIT_B, INIT_C);
    for _ in 0..iters {
        ec = ea; // copy
        eb = SCALAR * ec; // mul
        ec = ea + eb; // add
        ea = eb + SCALAR * ec; // triad
    }
    let close = |x: f64, e: f64| (x - e).abs() <= e.abs().max(1.0) * 1e-12;
    a.iter().all(|&x| close(x, ea))
        && b.iter().all(|&x| close(x, eb))
        && c.iter().all(|&x| close(x, ec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_verifies_and_reports_positive_bandwidth() {
        let rep = run_native(&NativeStreamConfig::quick());
        assert!(rep.verified, "array contents diverged from the recurrence");
        assert_eq!(rep.per_op.len(), 5);
        for (op, s) in &rep.per_op {
            assert!(s.mean > 0.0, "{op} bandwidth not positive");
            assert!(s.min > 0.0);
        }
        let (_, best) = rep.best_overall();
        assert!(best > 0.1, "best bandwidth implausibly low: {best}");
    }

    #[test]
    fn single_threaded_run_works() {
        let rep = run_native(&NativeStreamConfig {
            elems: 32 * 1024,
            iters: 3,
            nthreads: Some(1),
        });
        assert!(rep.verified);
        assert_eq!(rep.nthreads, 1);
    }

    #[test]
    fn multithreaded_matches_verification_with_odd_sizes() {
        // Size not divisible by thread count exercises chunk remainders.
        let rep = run_native(&NativeStreamConfig {
            elems: 10_007,
            iters: 4,
            nthreads: Some(3),
        });
        assert!(rep.verified);
    }

    #[test]
    fn best_overall_picks_max() {
        let rep = run_native(&NativeStreamConfig::quick());
        let (_, best) = rep.best_overall();
        for (_, s) in &rep.per_op {
            assert!(best >= s.max - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "empty native config")]
    fn zero_elems_rejected() {
        run_native(&NativeStreamConfig {
            elems: 0,
            iters: 1,
            nthreads: Some(1),
        });
    }
}
