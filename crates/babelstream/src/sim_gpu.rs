//! The simulated-GPU backend: Table 5's "Device" bandwidth column.
//!
//! The campaign allocates three device arrays, launches `inner_iters`
//! repetitions of each kernel into a stream, synchronizes, and derives the
//! bandwidth from virtual elapsed time — the same structure as
//! BabelStream's CUDA/HIP backends. Per the paper, only device 0 is used
//! ("BabelStream only uses one of the two GCDs" on MI250X).

use std::sync::Arc;

use doe_benchlib::{parallel_map_indexed, Samples, Summary};
use doe_gpurt::GpuRuntime;
use doe_gpusim::GpuModel;
use doe_memmodel::StreamOp;
use doe_topo::NodeTopology;

use crate::config::SweepConfig;

/// Results of a simulated GPU BabelStream campaign.
#[derive(Clone, Debug)]
pub struct GpuStreamReport {
    /// Best-kernel device bandwidth (GB/s), mean ± σ over runs.
    pub device: Summary,
    /// The winning kernel (final run).
    pub best_op: StreamOp,
    /// Best bandwidth per vector size (final run).
    pub curve: Vec<(u64, f64)>,
}

/// Run the GPU campaign on device 0 of the node.
pub fn run_sim_gpu(
    topo: Arc<NodeTopology>,
    models: &[GpuModel],
    seed: u64,
    cfg: &SweepConfig,
) -> GpuStreamReport {
    assert!(
        topo.has_accelerators(),
        "GPU BabelStream requires an accelerator node"
    );
    assert!(cfg.reps > 0, "need at least one repetition");
    let sizes = cfg.sizes();

    // Each rep builds its own runtime from the rep index, so reps are
    // independent and can run on any pool worker in any order.
    let per_rep = parallel_map_indexed(cfg.reps, |rep| {
        let mut rt = GpuRuntime::new(
            Arc::clone(&topo),
            models.to_vec(),
            seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let dev = rt.current_device();
        let stream = rt.default_stream(dev).expect("device 0 exists");
        let mut best = 0.0f64;
        let mut best_op = StreamOp::Copy;
        let mut curve: Vec<(u64, f64)> = Vec::with_capacity(sizes.len());
        for &n in &sizes {
            let mut best_at_size = 0.0f64;
            for &op in &StreamOp::ALL {
                let t0 = rt.now();
                for _ in 0..cfg.inner_iters {
                    rt.launch_stream_op(&stream, op, n).expect("launch");
                }
                rt.stream_synchronize(&stream).expect("sync");
                let elapsed = rt.now().since(t0);
                let bytes = op.reported_bytes(n) * cfg.inner_iters as u64;
                let bw = elapsed.bandwidth_gb_s(bytes);
                if bw > best_at_size {
                    best_at_size = bw;
                }
                if n == *sizes.last().expect("nonempty") && bw > best {
                    best = bw;
                    best_op = op;
                }
            }
            curve.push((n, best_at_size));
        }
        (best, best_op, curve)
    });

    let samples: Samples = per_rep.iter().map(|(best, _, _)| *best).collect();
    let (_, best_op, curve) = per_rep.into_iter().next_back().expect("at least one rep");
    GpuStreamReport {
        device: samples.summary(),
        best_op,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_memmodel::MemDomainModel;
    use doe_simtime::SimDuration;
    use doe_topo::{DeviceId, LinkKind, NodeBuilder, NumaId, SocketId, Vertex};

    fn gpu_node() -> (Arc<NodeTopology>, Vec<GpuModel>) {
        let topo = NodeBuilder::new("gpu-node")
            .socket("CPU")
            .numa(SocketId(0))
            .cores(NumaId(0), 16, 2)
            .device("SimGPU", NumaId(0))
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Device(DeviceId(0)),
                LinkKind::Pcie { gen: 4, lanes: 16 },
                SimDuration::from_ns(500.0),
                25.0,
            )
            .build()
            .expect("valid");
        let mut hbm = MemDomainModel::new("HBM2e", 1555.2, 30.0);
        hbm.sustained_efficiency = 0.877;
        let model = GpuModel::new("SimGPU", hbm);
        (Arc::new(topo), vec![model])
    }

    #[test]
    fn device_bandwidth_lands_near_model() {
        let (topo, models) = gpu_node();
        let mut cfg = SweepConfig::quick();
        cfg.max_elems = 16 * 1024 * 1024;
        let rep = run_sim_gpu(topo, &models, 3, &cfg);
        let want = 1555.2 * 0.877;
        let got = rep.device.mean;
        assert!(
            (got - want).abs() / want < 0.1,
            "got {got}, want about {want}"
        );
    }

    #[test]
    fn launch_overhead_depresses_small_sizes() {
        let (topo, models) = gpu_node();
        let rep = run_sim_gpu(topo, &models, 3, &SweepConfig::quick());
        let first = rep.curve.first().expect("curve").1;
        let last = rep.curve.last().expect("curve").1;
        assert!(last > first * 1.5, "{first} vs {last}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (topo, models) = gpu_node();
        let a = run_sim_gpu(Arc::clone(&topo), &models, 5, &SweepConfig::quick());
        let b = run_sim_gpu(topo, &models, 5, &SweepConfig::quick());
        assert_eq!(a.device.mean, b.device.mean);
        assert_eq!(a.device.std, b.device.std);
    }

    #[test]
    #[should_panic(expected = "requires an accelerator")]
    fn cpu_only_node_rejected() {
        let topo = NodeBuilder::new("cpu-only")
            .socket("CPU")
            .numa(SocketId(0))
            .cores(NumaId(0), 4, 1)
            .build()
            .expect("valid");
        run_sim_gpu(Arc::new(topo), &[], 1, &SweepConfig::quick());
    }
}
