//! Sweep configuration shared by the simulated backends.

use doe_simtime::SimDuration;

/// Configuration of a BabelStream campaign on a simulated machine.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Smallest vector length in `f64` elements (paper: 16 Ki).
    pub min_elems: u64,
    /// Largest vector length in `f64` elements (paper: ≥ 16 Mi for CPUs —
    /// at least 128 MB — and 128 Mi / 1 GiB for GPUs).
    pub max_elems: u64,
    /// Repeats inside one "binary run" (BabelStream default: 100).
    pub inner_iters: u32,
    /// Number of "binary runs" aggregated into mean ± σ (paper: 100).
    pub reps: usize,
    /// Fixed per-kernel-invocation host overhead (fork-join, loop setup);
    /// dominates at small vector sizes and produces the rising edge of the
    /// size-sweep curve.
    pub overhead_per_kernel: SimDuration,
}

impl SweepConfig {
    /// The paper's CPU campaign: 16 Ki → 16 Mi doubles (128 MiB arrays).
    pub fn paper_cpu() -> Self {
        SweepConfig {
            min_elems: 16 * 1024,
            max_elems: 16 * 1024 * 1024,
            inner_iters: 100,
            reps: 100,
            overhead_per_kernel: SimDuration::from_us(4.0),
        }
    }

    /// The paper's GPU campaign: 1 GiB arrays (128 Mi doubles).
    pub fn paper_gpu() -> Self {
        SweepConfig {
            min_elems: 16 * 1024,
            max_elems: 128 * 1024 * 1024,
            inner_iters: 100,
            reps: 100,
            overhead_per_kernel: SimDuration::ZERO, // covered by launch cost
        }
    }

    /// A reduced campaign for fast tests. The largest size still exceeds
    /// every modelled last-level cache (3 × 32 MiB arrays), so table
    /// values remain DRAM-bound like the paper's.
    pub fn quick() -> Self {
        SweepConfig {
            min_elems: 16 * 1024,
            max_elems: 4 * 1024 * 1024,
            inner_iters: 5,
            reps: 10,
            overhead_per_kernel: SimDuration::from_us(4.0),
        }
    }

    /// The power-of-two size schedule `min..=max`.
    pub fn sizes(&self) -> Vec<u64> {
        assert!(self.min_elems > 0, "min_elems must be positive");
        assert!(
            self.min_elems <= self.max_elems,
            "min_elems must not exceed max_elems"
        );
        let mut out = Vec::new();
        let mut n = self.min_elems;
        while n < self.max_elems {
            out.push(n);
            n = n.saturating_mul(2);
        }
        out.push(self.max_elems);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cpu_sizes_span_16k_to_16m() {
        let s = SweepConfig::paper_cpu().sizes();
        assert_eq!(*s.first().unwrap(), 16 * 1024);
        assert_eq!(*s.last().unwrap(), 16 * 1024 * 1024);
        assert_eq!(s.len(), 11); // 16k,32k,...,16M: 11 powers of two
                                 // Largest CPU arrays are 128 MiB, the paper's floor.
        assert_eq!(16 * 1024 * 1024 * 8, 128 * 1024 * 1024);
    }

    #[test]
    fn paper_gpu_top_size_is_1gib_arrays() {
        let s = SweepConfig::paper_gpu().sizes();
        assert_eq!(*s.last().unwrap() * 8, 1024 * 1024 * 1024);
    }

    #[test]
    fn sizes_are_doubling_and_sorted() {
        let s = SweepConfig::quick().sizes();
        for w in s.windows(2) {
            assert!(w[1] == w[0] * 2 || w[1] == *s.last().unwrap());
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn non_power_of_two_max_is_included_once() {
        let cfg = SweepConfig {
            min_elems: 1000,
            max_elems: 5000,
            ..SweepConfig::quick()
        };
        assert_eq!(cfg.sizes(), vec![1000, 2000, 4000, 5000]);
    }

    #[test]
    #[should_panic(expected = "min_elems must not exceed")]
    fn inverted_range_panics() {
        let cfg = SweepConfig {
            min_elems: 10,
            max_elems: 5,
            ..SweepConfig::quick()
        };
        cfg.sizes();
    }
}
