//! The paper's Table 4 bandwidth protocol executed on the host machine:
//! sweep the Table 1 thread-count combinations (1, `#cores`, `#threads`),
//! run the five kernels at each, and report the best single-thread and
//! best all-thread bandwidth — your machine's row of Table 4.
//!
//! `OMP_PROC_BIND`/`OMP_PLACES` rows collapse here: the portable native
//! backend cannot pin threads, so binding variants differ only through OS
//! scheduling noise, exactly as an unbound OpenMP run would.

use doe_benchlib::{Samples, Summary};
use doe_memmodel::StreamOp;
use doe_omp::{host_topology, HostTopology};

use crate::native::{run_native, NativeStreamConfig};

/// Configuration of the native Table 4 protocol.
#[derive(Clone, Copy, Debug)]
pub struct NativeTable4Config {
    /// Vector length in `f64` elements (the paper uses ≥ 16 Mi).
    pub elems: usize,
    /// Timed iterations per thread count.
    pub iters: u32,
    /// Outer repetitions aggregated into mean ± σ.
    pub reps: usize,
}

impl NativeTable4Config {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        NativeTable4Config {
            elems: 256 * 1024,
            iters: 5,
            reps: 3,
        }
    }

    /// The paper-faithful protocol (slow: minutes on a laptop).
    pub fn paper() -> Self {
        NativeTable4Config {
            elems: 16 * 1024 * 1024,
            iters: 100,
            reps: 100,
        }
    }
}

/// The host machine's Table 4 bandwidth columns.
#[derive(Clone, Debug)]
pub struct NativeTable4Report {
    /// Detected host topology.
    pub topology: HostTopology,
    /// Best single-thread bandwidth, GB/s.
    pub single: Summary,
    /// Best all-thread bandwidth, GB/s.
    pub all: Summary,
    /// Kernel that won the all-thread figure in the final repetition.
    pub best_op: StreamOp,
    /// Thread count that won the all-thread figure in the final repetition.
    pub best_threads: usize,
}

/// Run the protocol.
pub fn run_native_table4(cfg: &NativeTable4Config) -> NativeTable4Report {
    let topo = host_topology();
    // The distinct thread counts of Table 1 on this host.
    let mut counts = vec![topo.physical_cores, topo.hw_threads];
    counts.dedup();
    let mut single = Samples::new();
    let mut all = Samples::new();
    let mut best_op = StreamOp::Copy;
    let mut best_threads = 1;
    for _ in 0..cfg.reps {
        let one = run_native(&NativeStreamConfig {
            elems: cfg.elems,
            iters: cfg.iters,
            nthreads: Some(1),
        });
        assert!(one.verified, "single-thread verification failed");
        single.push(one.best_overall().1);

        let mut best = 0.0f64;
        for &threads in &counts {
            let rep = run_native(&NativeStreamConfig {
                elems: cfg.elems,
                iters: cfg.iters,
                nthreads: Some(threads),
            });
            assert!(rep.verified, "{threads}-thread verification failed");
            let (op, bw) = rep.best_overall();
            if bw > best {
                best = bw;
                best_op = op;
                best_threads = threads;
            }
        }
        all.push(best);
    }
    NativeTable4Report {
        topology: topo,
        single: single.summary(),
        all: all.summary(),
        best_op,
        best_threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_row_is_plausible() {
        let rep = run_native_table4(&NativeTable4Config::quick());
        assert!(rep.single.mean > 0.1, "single={}", rep.single.mean);
        assert!(
            rep.all.mean >= rep.single.mean * 0.5,
            "all={} single={}",
            rep.all.mean,
            rep.single.mean
        );
        assert!(rep.best_threads >= 1);
        assert!(rep.topology.hw_threads >= rep.topology.physical_cores);
        assert_eq!(rep.single.n, NativeTable4Config::quick().reps);
    }
}
