//! A BabelStream 4.0 port: Copy/Mul/Add/Triad/Dot memory-bandwidth
//! benchmarks.
//!
//! Three backends:
//!
//! * [`native`] — real arrays and real threads on the host machine, timed
//!   with the wall clock. This is what the original BabelStream does; use
//!   it to measure *your* machine.
//! * [`sim_cpu`] — the same sweep structure (sizes 16 Ki → ≥16 Mi doubles,
//!   the Table 1 `OMP_*` combinations, 100 inner repeats, best-of
//!   selection) executed against a simulated host memory system on virtual
//!   time. Regenerates the "Memory Bandwidth" columns of Table 4.
//! * [`sim_gpu`] — the CUDA/ROCm backend equivalent over `doe-gpurt`
//!   (1 GiB arrays). Regenerates the "Device" bandwidth column of Table 5.
//!
//! Bandwidth accounting follows BabelStream 4.0 exactly: the numerator is
//! 2 arrays for Copy/Mul/Dot and 3 for Add/Triad, with no write-allocate
//! traffic counted (see [`doe_memmodel::StreamOp`]).

//! # Example
//!
//! ```
//! use doe_babelstream::{run_native, NativeStreamConfig};
//!
//! // Really measures the machine running the doctest.
//! let report = run_native(&NativeStreamConfig::quick());
//! assert!(report.verified);
//! assert!(report.best_overall().1 > 0.1); // > 0.1 GB/s anywhere
//! ```

pub mod config;
pub mod native;
pub mod native_table4;
pub mod pointer_chase;
pub mod sim_cpu;
pub mod sim_gpu;

pub use config::SweepConfig;
pub use native::{run_native, NativeStreamConfig, NativeStreamReport};
pub use native_table4::{run_native_table4, NativeTable4Config, NativeTable4Report};
pub use pointer_chase::{run_pointer_chase, ChaseConfig, ChasePoint};
pub use sim_cpu::{run_sim_cpu, CpuStreamReport};
pub use sim_gpu::{run_sim_gpu, GpuStreamReport};
