//! OSU-style collective benchmarks (`osu_barrier`, `osu_allreduce`)
//! executed over the intra-node MPI runtime.
//!
//! Unlike `doe-net::collectives` (closed-form LogGP-style models), these
//! run the *actual algorithms* — every round is real `send`/`recv` calls
//! through the protocol state machine, so placement, eager/rendezvous
//! crossover, and socket boundaries all shape the result.

use std::sync::Arc;

use doe_benchlib::{run_reps, Summary};
use doe_mpi::{MpiConfig, MpiSim, Rank};
use doe_simtime::SimTime;
use doe_topo::{CoreId, NodeTopology};

use crate::config::OsuConfig;

/// Allreduce algorithm to execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllreduceAlgo {
    /// log₂ P exchange rounds of the full vector (P must be a power of 2).
    RecursiveDoubling,
    /// 2(P−1) ring steps of `bytes/P` (any P ≥ 2).
    Ring,
}

fn build_world(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: &[CoreId],
    seed: u64,
) -> (MpiSim, Vec<Rank>) {
    let mut world = MpiSim::new(Arc::clone(topo), mpi.clone(), seed);
    let ranks = cores
        .iter()
        .map(|&c| world.add_host_rank(c).expect("valid core"))
        .collect();
    (world, ranks)
}

fn finish_time(world: &MpiSim, ranks: &[Rank]) -> SimTime {
    ranks
        .iter()
        .map(|&r| world.time(r).expect("rank"))
        .max()
        .expect("nonempty")
}

/// Pairwise exchange between two ranks (both directions in flight).
///
/// Uses nonblocking sends, as real `MPI_Sendrecv`/allreduce internals do —
/// with blocking standard-mode sends this head-to-head pattern deadlocks
/// in the rendezvous regime (and `--check` would flag it).
fn exchange(world: &mut MpiSim, a: Rank, b: Rank, bytes: u64) {
    world.send_nb(a, b, bytes).expect("send");
    world.send_nb(b, a, bytes).expect("send");
    world.recv(a, b, bytes).expect("recv");
    world.recv(b, a, bytes).expect("recv");
}

fn run_recursive_doubling(world: &mut MpiSim, ranks: &[Rank], bytes: u64) {
    let p = ranks.len();
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs a power of two"
    );
    let mut stride = 1;
    while stride < p {
        // Each pair (r, r ^ stride) exchanges the full vector.
        for r in 0..p {
            let partner = r ^ stride;
            if r < partner {
                exchange(world, ranks[r], ranks[partner], bytes);
            }
        }
        stride <<= 1;
    }
}

fn run_ring(world: &mut MpiSim, ranks: &[Rank], bytes: u64) {
    let p = ranks.len();
    assert!(p >= 2, "ring needs at least two ranks");
    let chunk = (bytes / p as u64).max(1);
    // Reduce-scatter then allgather: 2(P-1) steps; in each step every rank
    // sends a chunk to its successor and receives from its predecessor.
    // Nonblocking sends: a ring of blocking rendezvous sends is a classic
    // deadlock cycle, which is why real ring allreduces use Isend/Irecv.
    for _ in 0..(2 * (p - 1)) {
        for r in 0..p {
            let next = (r + 1) % p;
            world.send_nb(ranks[r], ranks[next], chunk).expect("send");
        }
        for r in 0..p {
            let prev = (r + p - 1) % p;
            world.recv(ranks[r], ranks[prev], chunk).expect("recv");
        }
    }
}

fn run_binomial_barrier(world: &mut MpiSim, ranks: &[Rank]) {
    let p = ranks.len();
    // Gather to rank 0 (binomial tree), then broadcast back down.
    let mut stride = 1;
    while stride < p {
        for r in (0..p).step_by(stride * 2) {
            let partner = r + stride;
            if partner < p {
                world.send(ranks[partner], ranks[r], 0).expect("send");
                world.recv(ranks[r], ranks[partner], 0).expect("recv");
            }
        }
        stride <<= 1;
    }
    while stride > 1 {
        stride >>= 1;
        for r in (0..p).step_by(stride * 2) {
            let partner = r + stride;
            if partner < p {
                world.send(ranks[r], ranks[partner], 0).expect("send");
                world.recv(ranks[partner], ranks[r], 0).expect("recv");
            }
        }
    }
}

/// Time one allreduce of `bytes` across ranks pinned to `cores`,
/// mean ± σ (µs) over the configured repetitions.
pub fn osu_allreduce(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: &[CoreId],
    bytes: u64,
    algo: AllreduceAlgo,
    cfg: &OsuConfig,
    seed: u64,
) -> Summary {
    assert!(cores.len() >= 2, "allreduce needs at least two ranks");
    run_reps(cfg.reps, |rep| {
        let (mut world, ranks) = build_world(
            topo,
            mpi,
            cores,
            seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        world.barrier();
        let t0 = finish_time(&world, &ranks);
        let iters = cfg.iters_for(bytes).min(100);
        for _ in 0..iters {
            match algo {
                AllreduceAlgo::RecursiveDoubling => {
                    run_recursive_doubling(&mut world, &ranks, bytes)
                }
                AllreduceAlgo::Ring => run_ring(&mut world, &ranks, bytes),
            }
            world.barrier();
        }
        finish_time(&world, &ranks).since(t0).as_us() / iters as f64
    })
    .summary()
}

/// Time one barrier across ranks pinned to `cores`, mean ± σ (µs).
pub fn osu_barrier(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: &[CoreId],
    cfg: &OsuConfig,
    seed: u64,
) -> Summary {
    assert!(cores.len() >= 2, "barrier needs at least two ranks");
    run_reps(cfg.reps, |rep| {
        let (mut world, ranks) = build_world(
            topo,
            mpi,
            cores,
            seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        world.barrier();
        let t0 = finish_time(&world, &ranks);
        let iters = cfg.small_iters.min(200);
        for _ in 0..iters {
            run_binomial_barrier(&mut world, &ranks);
            world.barrier();
        }
        finish_time(&world, &ranks).since(t0).as_us() / iters as f64
    })
    .summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_simtime::{Jitter, SimDuration};
    use doe_topo::{LinkKind, NodeBuilder, NumaId, SocketId, Vertex};

    fn topo() -> Arc<NodeTopology> {
        Arc::new(
            NodeBuilder::new("coll")
                .socket("A")
                .socket("B")
                .numa(SocketId(0))
                .numa(SocketId(1))
                .cores(NumaId(0), 8, 1)
                .cores(NumaId(1), 8, 1)
                .link(
                    Vertex::Numa(NumaId(0)),
                    Vertex::Numa(NumaId(1)),
                    LinkKind::Upi,
                    SimDuration::from_ns(200.0),
                    40.0,
                )
                .build()
                .expect("valid"),
        )
    }

    fn mpi() -> MpiConfig {
        let mut c = MpiConfig::default_host();
        c.jitter = Jitter::NONE;
        c
    }

    fn cores(n: u32) -> Vec<CoreId> {
        (0..n).map(CoreId).collect()
    }

    fn cfg() -> OsuConfig {
        let mut c = OsuConfig::quick();
        c.reps = 3;
        c.small_iters = 20;
        c.large_iters = 5;
        c
    }

    #[test]
    fn barrier_is_cheaper_than_any_allreduce() {
        let t = topo();
        let b = osu_barrier(&t, &mpi(), &cores(8), &cfg(), 1);
        let a = osu_allreduce(
            &t,
            &mpi(),
            &cores(8),
            4096,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
        assert!(b.mean > 0.0);
        assert!(a.mean > b.mean, "barrier={} allreduce={}", b.mean, a.mean);
    }

    #[test]
    fn small_messages_favor_recursive_doubling() {
        let t = topo();
        let rd = osu_allreduce(
            &t,
            &mpi(),
            &cores(8),
            64,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
        let ring = osu_allreduce(&t, &mpi(), &cores(8), 64, AllreduceAlgo::Ring, &cfg(), 1);
        assert!(rd.mean < ring.mean, "rd={} ring={}", rd.mean, ring.mean);
    }

    #[test]
    fn large_messages_favor_ring() {
        let t = topo();
        let bytes = 4 << 20;
        let rd = osu_allreduce(
            &t,
            &mpi(),
            &cores(8),
            bytes,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
        let ring = osu_allreduce(&t, &mpi(), &cores(8), bytes, AllreduceAlgo::Ring, &cfg(), 1);
        assert!(ring.mean < rd.mean, "rd={} ring={}", rd.mean, ring.mean);
    }

    #[test]
    fn allreduce_grows_with_rank_count() {
        let t = topo();
        let small = osu_allreduce(
            &t,
            &mpi(),
            &cores(2),
            1024,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
        let large = osu_allreduce(
            &t,
            &mpi(),
            &cores(16),
            1024,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
        assert!(large.mean > small.mean);
    }

    #[test]
    fn cross_socket_ranks_pay_the_upi_hop() {
        let t = topo();
        let same_socket: Vec<CoreId> = (0..4).map(CoreId).collect();
        let cross: Vec<CoreId> = vec![CoreId(0), CoreId(1), CoreId(8), CoreId(9)];
        let near = osu_barrier(&t, &mpi(), &same_socket, &cfg(), 1);
        let far = osu_barrier(&t, &mpi(), &cross, &cfg(), 1);
        assert!(far.mean > near.mean, "near={} far={}", near.mean, far.mean);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn recursive_doubling_rejects_odd_rank_counts() {
        let t = topo();
        osu_allreduce(
            &t,
            &mpi(),
            &[CoreId(0), CoreId(1), CoreId(2)],
            64,
            AllreduceAlgo::RecursiveDoubling,
            &cfg(),
            1,
        );
    }

    #[test]
    fn ring_handles_odd_rank_counts() {
        let t = topo();
        let s = osu_allreduce(
            &t,
            &mpi(),
            &[CoreId(0), CoreId(1), CoreId(2)],
            4096,
            AllreduceAlgo::Ring,
            &cfg(),
            1,
        );
        assert!(s.mean > 0.0);
    }
}
