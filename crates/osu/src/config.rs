//! OSU benchmark parameters (defaults from OSU Micro-Benchmarks 7.1.1).

/// Parameters of an OSU point-to-point campaign.
#[derive(Clone, Debug)]
pub struct OsuConfig {
    /// Message sizes in bytes.
    pub sizes: Vec<u64>,
    /// Timed iterations for small messages (OSU default: 1000).
    pub small_iters: u32,
    /// Timed iterations for large messages (OSU default: 100).
    pub large_iters: u32,
    /// Boundary between small and large (OSU default: 8 KiB).
    pub large_threshold: u64,
    /// Warmup iterations before timing.
    pub warmup: u32,
    /// Outer "binary runs" aggregated into mean ± σ (paper: 100).
    pub reps: usize,
}

impl OsuConfig {
    /// The paper's campaign: sizes 0 and 1 B … 4 MiB by powers of two.
    pub fn paper() -> Self {
        let mut sizes = vec![0u64];
        let mut s = 1u64;
        while s <= 4 * 1024 * 1024 {
            sizes.push(s);
            s *= 2;
        }
        OsuConfig {
            sizes,
            small_iters: 1000,
            large_iters: 100,
            large_threshold: 8 * 1024,
            warmup: 10,
            reps: 100,
        }
    }

    /// The latency-table campaign: just the headline zero-byte point.
    pub fn table_point() -> Self {
        OsuConfig {
            sizes: vec![0],
            ..Self::paper()
        }
    }

    /// A reduced campaign for fast tests.
    pub fn quick() -> Self {
        OsuConfig {
            sizes: vec![0, 8, 1024, 65_536],
            small_iters: 50,
            large_iters: 10,
            large_threshold: 8 * 1024,
            warmup: 2,
            reps: 10,
        }
    }

    /// Iterations used for a message of `bytes`.
    pub fn iters_for(&self, bytes: u64) -> u32 {
        if bytes <= self.large_threshold {
            self.small_iters
        } else {
            self.large_iters
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_cover_zero_to_4mib() {
        let c = OsuConfig::paper();
        assert_eq!(c.sizes[0], 0);
        assert_eq!(c.sizes[1], 1);
        assert_eq!(*c.sizes.last().unwrap(), 4 * 1024 * 1024);
    }

    #[test]
    fn iteration_split_matches_osu_defaults() {
        let c = OsuConfig::paper();
        assert_eq!(c.iters_for(0), 1000);
        assert_eq!(c.iters_for(8 * 1024), 1000);
        assert_eq!(c.iters_for(8 * 1024 + 1), 100);
        assert_eq!(c.iters_for(1 << 20), 100);
    }

    #[test]
    fn table_point_is_zero_byte_only() {
        let c = OsuConfig::table_point();
        assert_eq!(c.sizes, vec![0]);
        assert_eq!(c.reps, 100);
    }
}
