//! OSU-style point-to-point MPI benchmarks over `doe-mpi`.
//!
//! Ports of `osu_latency` (ping-pong, one-way latency = round-trip / 2) and
//! `osu_bw` (windowed streaming bandwidth), with the OSU 7.1.1 defaults the
//! paper used: 1,000 timed iterations for messages ≤ 8 KiB and 100 for
//! larger ones, preceded by warmup iterations, swept over power-of-two
//! message sizes.
//!
//! Placement mirrors §3.1 of the paper: an **on-socket** pair (two ranks on
//! the first two cores of one socket) and an **on-node** pair (ranks on
//! different sockets — or, on single-socket Xeon Phi machines, the first
//! and *last* core of the chip).

//! # Example
//!
//! ```
//! use doe_osu::{on_socket_pair, osu_latency, OsuConfig};
//!
//! let machine = doe_machines::by_name("Eagle").unwrap();
//! let cores = on_socket_pair(&machine.topo).unwrap();
//! let mut cfg = OsuConfig::quick();
//! cfg.reps = 3;
//! let points = osu_latency(&machine.topo, &machine.mpi, cores, &cfg, 1);
//! // Eagle's paper on-socket figure is 0.17 us.
//! assert!((points[0].one_way_us.mean - 0.17).abs() < 0.05);
//! ```

pub mod bandwidth;
pub mod collectives;
pub mod config;
pub mod latency;
pub mod multi;
pub mod pairing;

pub use bandwidth::{osu_bw, BwPoint};
pub use collectives::{osu_allreduce, osu_barrier, AllreduceAlgo};
pub use config::OsuConfig;
pub use latency::{osu_latency, osu_latency_device, LatencyPoint};
pub use multi::{osu_mbw_mr, osu_multi_lat, MbwMrPoint, MultiLatPoint};
pub use pairing::{on_node_pair, on_socket_pair};
