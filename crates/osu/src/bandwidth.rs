//! `osu_bw`: windowed streaming bandwidth.
//!
//! The sender pushes a window of back-to-back messages; the receiver posts
//! matching receives and returns a small acknowledgment; bandwidth is
//! `window × bytes × iters / elapsed`. (The paper's tables report only
//! latency, but the bandwidth benchmark is part of the OSU suite the
//! artifact describes, and the crossover behaviour it exposes is used by
//! the `ablation_eager` bench.)

use std::sync::Arc;

use doe_benchlib::{run_reps_par, Summary};
use doe_mpi::{MpiConfig, MpiSim};
use doe_topo::{CoreId, NodeTopology};

use crate::config::OsuConfig;

/// OSU's default window size.
pub const WINDOW: u32 = 64;
/// Size of the acknowledgment message.
const ACK_BYTES: u64 = 4;

/// One point of the bandwidth curve.
#[derive(Clone, Debug)]
pub struct BwPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Achieved bandwidth in GB/s (decimal), mean ± σ over runs.
    pub gb_s: Summary,
}

/// Host-buffer streaming bandwidth between ranks pinned to `cores`.
pub fn osu_bw(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: (CoreId, CoreId),
    cfg: &OsuConfig,
    seed: u64,
) -> Vec<BwPoint> {
    cfg.sizes
        .iter()
        .filter(|&&b| b > 0)
        .map(|&bytes| {
            let iters = cfg.iters_for(bytes);
            // Each rep builds its own sim world from the rep index, so
            // reps can run on any pool worker in any order.
            let samples = run_reps_par(cfg.reps, |rep| {
                let mut world = MpiSim::new(
                    Arc::clone(topo),
                    mpi.clone(),
                    seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let a = world.add_host_rank(cores.0).expect("core a");
                let b = world.add_host_rank(cores.1).expect("core b");
                // Warmup window.
                for _ in 0..cfg.warmup.min(4) {
                    world.send(a, b, bytes).expect("send");
                    world.recv(b, a, bytes).expect("recv");
                }
                world.send(b, a, ACK_BYTES).expect("ack");
                world.recv(a, b, ACK_BYTES).expect("ack recv");
                world.barrier();
                let t0 = world.time(a).expect("rank a");
                for _ in 0..iters {
                    for _ in 0..WINDOW {
                        world.send(a, b, bytes).expect("send");
                    }
                    for _ in 0..WINDOW {
                        world.recv(b, a, bytes).expect("recv");
                    }
                    world.send(b, a, ACK_BYTES).expect("ack");
                    world.recv(a, b, ACK_BYTES).expect("ack recv");
                }
                let dt = world.time(a).expect("rank a").since(t0);
                let moved = bytes * WINDOW as u64 * iters as u64;
                dt.bandwidth_gb_s(moved)
            });
            BwPoint {
                bytes,
                gb_s: samples.summary(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::on_socket_pair;
    use doe_simtime::Jitter;
    use doe_topo::{NodeBuilder, NumaId, SocketId};

    fn topo() -> Arc<NodeTopology> {
        Arc::new(
            NodeBuilder::new("bw-test")
                .socket("A")
                .numa(SocketId(0))
                .cores(NumaId(0), 4, 1)
                .build()
                .expect("valid"),
        )
    }

    fn mpi() -> MpiConfig {
        let mut c = MpiConfig::default_host();
        c.jitter = Jitter::NONE;
        c
    }

    #[test]
    fn bandwidth_rises_with_message_size() {
        let t = topo();
        let cores = on_socket_pair(&t).unwrap();
        let pts = osu_bw(&t, &mpi(), cores, &OsuConfig::quick(), 1);
        assert!(pts.len() >= 3);
        let first = pts.first().unwrap().gb_s.mean;
        let last = pts.last().unwrap().gb_s.mean;
        assert!(last > first * 5.0, "first={first} last={last}");
    }

    #[test]
    fn large_message_bandwidth_approaches_shm_bandwidth() {
        let t = topo();
        let cores = on_socket_pair(&t).unwrap();
        let cfg = OsuConfig {
            sizes: vec![1 << 22],
            ..OsuConfig::quick()
        };
        let pts = osu_bw(&t, &mpi(), cores, &cfg, 1);
        let bw = pts[0].gb_s.mean;
        let cap = mpi().shm_bandwidth;
        assert!(bw > cap * 0.5 && bw <= cap * 1.01, "bw={bw}, cap={cap}");
    }

    #[test]
    fn zero_size_is_skipped() {
        let t = topo();
        let cores = on_socket_pair(&t).unwrap();
        let cfg = OsuConfig {
            sizes: vec![0, 1024],
            ..OsuConfig::quick()
        };
        let pts = osu_bw(&t, &mpi(), cores, &cfg, 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].bytes, 1024);
    }
}
