//! `osu_latency`: blocking ping-pong, one-way latency = round-trip / 2.

use std::sync::Arc;

use doe_benchlib::{run_reps_par, Summary};
use doe_mpi::{MpiConfig, MpiSim, Rank};
use doe_topo::{CoreId, DeviceId, NodeTopology};

use crate::config::OsuConfig;

/// One point of the latency curve.
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// One-way latency in µs, mean ± σ over the outer runs.
    pub one_way_us: Summary,
}

/// Where each rank's message buffer lives.
#[derive(Clone, Copy, Debug)]
enum BufKind {
    Host,
    Device(DeviceId),
}

fn build_pair(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: (CoreId, CoreId),
    bufs: (BufKind, BufKind),
    seed: u64,
) -> (MpiSim, Rank, Rank) {
    let mut world = MpiSim::new(Arc::clone(topo), mpi.clone(), seed);
    let add = |w: &mut MpiSim, core, buf| match buf {
        BufKind::Host => w.add_host_rank(core).expect("valid core"),
        BufKind::Device(d) => w.add_device_rank(core, d).expect("valid core/device"),
    };
    let a = add(&mut world, cores.0, bufs.0);
    let b = add(&mut world, cores.1, bufs.1);
    (world, a, b)
}

/// One binary run of the ping-pong for one size: returns one-way µs.
fn pingpong_once(world: &mut MpiSim, a: Rank, b: Rank, bytes: u64, warmup: u32, iters: u32) -> f64 {
    for _ in 0..warmup {
        world.send(a, b, bytes).expect("send");
        world.recv(b, a, bytes).expect("recv");
        world.send(b, a, bytes).expect("send");
        world.recv(a, b, bytes).expect("recv");
    }
    world.barrier();
    let t0 = world.time(a).expect("rank a");
    for _ in 0..iters {
        world.send(a, b, bytes).expect("send");
        world.recv(b, a, bytes).expect("recv");
        world.send(b, a, bytes).expect("send");
        world.recv(a, b, bytes).expect("recv");
    }
    let dt = world.time(a).expect("rank a").since(t0);
    dt.as_us() / (2.0 * iters as f64)
}

fn run_campaign(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: (CoreId, CoreId),
    bufs: (BufKind, BufKind),
    cfg: &OsuConfig,
    seed: u64,
) -> Vec<LatencyPoint> {
    cfg.sizes
        .iter()
        .map(|&bytes| {
            let iters = cfg.iters_for(bytes);
            // Each rep builds its own sim world from the rep index, so
            // reps can run on any pool worker in any order.
            let samples = run_reps_par(cfg.reps, |rep| {
                let (mut world, a, b) = build_pair(
                    topo,
                    mpi,
                    cores,
                    bufs,
                    seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                pingpong_once(&mut world, a, b, bytes, cfg.warmup, iters)
            });
            LatencyPoint {
                bytes,
                one_way_us: samples.summary(),
            }
        })
        .collect()
}

/// Host-buffer latency between ranks pinned to `cores`.
pub fn osu_latency(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: (CoreId, CoreId),
    cfg: &OsuConfig,
    seed: u64,
) -> Vec<LatencyPoint> {
    run_campaign(topo, mpi, cores, (BufKind::Host, BufKind::Host), cfg, seed)
}

/// Device-buffer latency: ranks pinned to `cores`, buffers on `devices`.
pub fn osu_latency_device(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    cores: (CoreId, CoreId),
    devices: (DeviceId, DeviceId),
    cfg: &OsuConfig,
    seed: u64,
) -> Vec<LatencyPoint> {
    run_campaign(
        topo,
        mpi,
        cores,
        (BufKind::Device(devices.0), BufKind::Device(devices.1)),
        cfg,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::{on_node_pair, on_socket_pair};
    use doe_mpi::DevicePath;
    use doe_simtime::{Jitter, SimDuration};
    use doe_topo::{LinkKind, NodeBuilder, NumaId, SocketId, Vertex};

    fn topo() -> Arc<NodeTopology> {
        Arc::new(
            NodeBuilder::new("osu-test")
                .socket("A")
                .socket("B")
                .numa(SocketId(0))
                .numa(SocketId(1))
                .cores(NumaId(0), 4, 1)
                .cores(NumaId(1), 4, 1)
                .devices("G", NumaId(0), 2)
                .link(
                    Vertex::Numa(NumaId(0)),
                    Vertex::Numa(NumaId(1)),
                    LinkKind::Upi,
                    SimDuration::from_ns(210.0),
                    40.0,
                )
                .link(
                    Vertex::Numa(NumaId(0)),
                    Vertex::Device(DeviceId(0)),
                    LinkKind::InfinityFabric { links: 1 },
                    SimDuration::from_ns(400.0),
                    36.0,
                )
                .link(
                    Vertex::Numa(NumaId(0)),
                    Vertex::Device(DeviceId(1)),
                    LinkKind::InfinityFabric { links: 1 },
                    SimDuration::from_ns(400.0),
                    36.0,
                )
                .link(
                    Vertex::Device(DeviceId(0)),
                    Vertex::Device(DeviceId(1)),
                    LinkKind::InfinityFabric { links: 4 },
                    SimDuration::from_ns(120.0),
                    200.0,
                )
                .build()
                .expect("valid"),
        )
    }

    fn mpi() -> MpiConfig {
        let mut c = MpiConfig::default_host();
        c.jitter = Jitter::relative(0.01);
        c
    }

    #[test]
    fn zero_byte_latency_is_submicrosecond_on_socket() {
        let t = topo();
        let cores = on_socket_pair(&t).expect("pair");
        let pts = osu_latency(&t, &mpi(), cores, &OsuConfig::quick(), 1);
        let head = &pts[0];
        assert_eq!(head.bytes, 0);
        assert!(head.one_way_us.mean < 1.0, "lat={}", head.one_way_us.mean);
        assert!(head.one_way_us.std > 0.0);
    }

    #[test]
    fn on_node_is_slower_than_on_socket() {
        let t = topo();
        let cfg = OsuConfig::quick();
        let s = osu_latency(&t, &mpi(), on_socket_pair(&t).unwrap(), &cfg, 1);
        let n = osu_latency(&t, &mpi(), on_node_pair(&t).unwrap(), &cfg, 1);
        assert!(n[0].one_way_us.mean > s[0].one_way_us.mean);
    }

    #[test]
    fn latency_curve_is_monotone_in_size() {
        let t = topo();
        let pts = osu_latency(
            &t,
            &mpi(),
            on_socket_pair(&t).unwrap(),
            &OsuConfig::quick(),
            1,
        );
        for w in pts.windows(2) {
            assert!(
                w[1].one_way_us.mean >= w[0].one_way_us.mean * 0.95,
                "{} B: {} then {} B: {}",
                w[0].bytes,
                w[0].one_way_us.mean,
                w[1].bytes,
                w[1].one_way_us.mean
            );
        }
    }

    #[test]
    fn rma_device_latency_is_submicrosecond() {
        let t = topo();
        let mut cfg_mpi = mpi();
        cfg_mpi.device_path = DevicePath::Rma {
            extra_overhead: SimDuration::from_ns(100.0),
        };
        let cores = on_socket_pair(&t).unwrap();
        let pts = osu_latency_device(
            &t,
            &cfg_mpi,
            cores,
            (DeviceId(0), DeviceId(1)),
            &OsuConfig::quick(),
            2,
        );
        assert!(
            pts[0].one_way_us.mean < 1.0,
            "lat={}",
            pts[0].one_way_us.mean
        );
    }

    #[test]
    fn staged_device_latency_is_many_microseconds() {
        let t = topo();
        let cfg_mpi = mpi(); // default Staged 4 us/stage
        let cores = on_socket_pair(&t).unwrap();
        let pts = osu_latency_device(
            &t,
            &cfg_mpi,
            cores,
            (DeviceId(0), DeviceId(1)),
            &OsuConfig::quick(),
            2,
        );
        assert!(
            pts[0].one_way_us.mean > 10.0,
            "lat={}",
            pts[0].one_way_us.mean
        );
    }

    #[test]
    fn reproducible_per_seed() {
        let t = topo();
        let cores = on_socket_pair(&t).unwrap();
        let a = osu_latency(&t, &mpi(), cores, &OsuConfig::quick(), 5);
        let b = osu_latency(&t, &mpi(), cores, &OsuConfig::quick(), 5);
        assert_eq!(a[0].one_way_us.mean, b[0].one_way_us.mean);
        assert_eq!(a[0].one_way_us.std, b[0].one_way_us.std);
    }
}
