//! Rank placement rules from §3.1 of the paper.

use doe_topo::{CoreId, NodeTopology, SocketId};

/// The "on-socket" pair: the first two cores of the first socket.
///
/// On single-socket machines (Xeon Phi in quad mode) this is the paper's
/// "close" pair, cores 0 and 1.
pub fn on_socket_pair(topo: &NodeTopology) -> Option<(CoreId, CoreId)> {
    let first_socket = topo.sockets.first()?.id;
    let cores = topo.cores_of_socket(first_socket);
    if cores.len() < 2 {
        return None;
    }
    Some((cores[0], cores[1]))
}

/// The "on-node" pair: first core of the first socket and first core of
/// the second socket; on single-socket machines, the paper's "far" pair —
/// cores 0 and N−1.
pub fn on_node_pair(topo: &NodeTopology) -> Option<(CoreId, CoreId)> {
    if topo.sockets.len() >= 2 {
        let a = *topo.cores_of_socket(SocketId(0)).first()?;
        let b = *topo.cores_of_socket(SocketId(1)).first()?;
        Some((a, b))
    } else {
        let cores = topo.cores_of_socket(topo.sockets.first()?.id);
        if cores.len() < 2 {
            return None;
        }
        Some((cores[0], *cores.last()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_simtime::SimDuration;
    use doe_topo::{LinkKind, NodeBuilder, NumaId, Vertex};

    fn dual_socket() -> NodeTopology {
        NodeBuilder::new("dual")
            .socket("A")
            .socket("B")
            .numa(SocketId(0))
            .numa(SocketId(1))
            .cores(NumaId(0), 4, 1)
            .cores(NumaId(1), 4, 1)
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Numa(NumaId(1)),
                LinkKind::Upi,
                SimDuration::from_ns(100.0),
                40.0,
            )
            .build()
            .expect("valid")
    }

    fn knl() -> NodeTopology {
        NodeBuilder::new("knl")
            .socket("Phi")
            .numa(SocketId(0))
            .cores(NumaId(0), 68, 4)
            .build()
            .expect("valid")
    }

    #[test]
    fn dual_socket_pairs() {
        let t = dual_socket();
        assert_eq!(on_socket_pair(&t), Some((CoreId(0), CoreId(1))));
        assert_eq!(on_node_pair(&t), Some((CoreId(0), CoreId(4))));
    }

    #[test]
    fn knl_far_pair_is_first_and_last_core() {
        let t = knl();
        assert_eq!(on_socket_pair(&t), Some((CoreId(0), CoreId(1))));
        assert_eq!(on_node_pair(&t), Some((CoreId(0), CoreId(67))));
    }

    #[test]
    fn single_core_machine_has_no_pairs() {
        let t = NodeBuilder::new("uni")
            .socket("tiny")
            .numa(SocketId(0))
            .cores(NumaId(0), 1, 1)
            .build()
            .expect("valid");
        assert_eq!(on_socket_pair(&t), None);
        assert_eq!(on_node_pair(&t), None);
    }
}
