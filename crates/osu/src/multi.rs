//! `osu_multi_lat`: point-to-point latency with many concurrent pairs.
//!
//! The paper's stated DOE convention is one MPI rank per core; under that
//! loading, point-to-point latency differs from the quiet two-rank figure
//! because co-located pairs share the socket's memory ports. This
//! benchmark drives `pairs` simultaneous ping-pongs and reports the
//! average one-way latency per pair.

use std::sync::Arc;

use doe_benchlib::{parallel_map_indexed, run_reps_par, Samples, Summary};
use doe_mpi::{MpiConfig, MpiSim, Rank};
use doe_topo::NodeTopology;

use crate::config::OsuConfig;

/// Result of a multi-pair campaign at one message size.
#[derive(Clone, Debug)]
pub struct MultiLatPoint {
    /// Number of concurrent pairs.
    pub pairs: usize,
    /// Average one-way latency per pair, µs.
    pub one_way_us: Summary,
}

/// Build `pairs` rank pairs: pair *i* is (core 2i, core 2i+1) — adjacent
/// cores, the multi-pair layout osu_multi_lat uses.
fn build_pairs(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    pairs: usize,
    seed: u64,
) -> Option<(MpiSim, Vec<(Rank, Rank)>)> {
    if topo.core_count() < pairs * 2 {
        return None;
    }
    let mut world = MpiSim::new(Arc::clone(topo), mpi.clone(), seed);
    let mut out = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let a = world
            .add_host_rank(topo.cores[2 * i].id)
            .expect("core exists");
        let b = world
            .add_host_rank(topo.cores[2 * i + 1].id)
            .expect("core exists");
        out.push((a, b));
    }
    Some((world, out))
}

/// Run the multi-pair latency benchmark at `bytes` for each pair count.
///
/// Returns `None` if the machine lacks cores for the largest pair count.
pub fn osu_multi_lat(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    pair_counts: &[usize],
    bytes: u64,
    cfg: &OsuConfig,
    seed: u64,
) -> Option<Vec<MultiLatPoint>> {
    let max_pairs = *pair_counts.iter().max()?;
    if topo.core_count() < max_pairs * 2 {
        return None;
    }
    let iters = cfg.iters_for(bytes);
    Some(
        pair_counts
            .iter()
            .map(|&pairs| {
                // Each rep builds its own sim world from the rep index,
                // so reps can run on any pool worker in any order.
                let samples = run_reps_par(cfg.reps, |rep| {
                    let (mut world, rank_pairs) = build_pairs(
                        topo,
                        mpi,
                        pairs,
                        seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                    .expect("checked core count");
                    world.barrier();
                    let start = world.time(rank_pairs[0].0).expect("rank");
                    for _ in 0..iters {
                        // All pairs send together, then all receive — the
                        // concurrent phase structure of osu_multi_lat.
                        for &(a, b) in &rank_pairs {
                            world.send(a, b, bytes).expect("send");
                        }
                        for &(a, b) in &rank_pairs {
                            world.recv(b, a, bytes).expect("recv");
                        }
                        for &(a, b) in &rank_pairs {
                            world.send(b, a, bytes).expect("send");
                        }
                        for &(a, b) in &rank_pairs {
                            world.recv(a, b, bytes).expect("recv");
                        }
                    }
                    // Average completion over pairs.
                    let total: f64 = rank_pairs
                        .iter()
                        .map(|&(a, _)| world.time(a).expect("rank").since(start).as_us())
                        .sum();
                    total / rank_pairs.len() as f64 / (2.0 * iters as f64)
                });
                MultiLatPoint {
                    pairs,
                    one_way_us: samples.summary(),
                }
            })
            .collect(),
    )
}

/// Result of a multi-pair bandwidth campaign at one message size.
#[derive(Clone, Debug)]
pub struct MbwMrPoint {
    /// Number of concurrent pairs.
    pub pairs: usize,
    /// Aggregate bandwidth across all pairs, GB/s.
    pub aggregate_gb_s: Summary,
    /// Aggregate message rate, million messages per second.
    pub msg_rate_m_per_s: Summary,
}

/// `osu_mbw_mr`: aggregate multi-pair bandwidth and message rate. Every
/// pair streams a 64-message window concurrently; aggregate throughput is
/// `pairs × window × bytes / elapsed`.
pub fn osu_mbw_mr(
    topo: &Arc<NodeTopology>,
    mpi: &MpiConfig,
    pair_counts: &[usize],
    bytes: u64,
    cfg: &OsuConfig,
    seed: u64,
) -> Option<Vec<MbwMrPoint>> {
    const WINDOW: u32 = 64;
    let max_pairs = *pair_counts.iter().max()?;
    if topo.core_count() < max_pairs * 2 || bytes == 0 {
        return None;
    }
    let iters = cfg.iters_for(bytes).min(64);
    Some(
        pair_counts
            .iter()
            .map(|&pairs| {
                // One (bandwidth, message-rate) pair per rep, collected in
                // rep order so the Samples match the serial loop exactly.
                let per_rep = parallel_map_indexed(cfg.reps, |rep| {
                    let (mut world, rank_pairs) = build_pairs(
                        topo,
                        mpi,
                        pairs,
                        seed ^ (rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                    .expect("checked core count");
                    world.barrier();
                    let start = world.time(rank_pairs[0].0).expect("rank");
                    for _ in 0..iters {
                        for _ in 0..WINDOW {
                            for &(a, b) in &rank_pairs {
                                world.send(a, b, bytes).expect("send");
                            }
                        }
                        for _ in 0..WINDOW {
                            for &(a, b) in &rank_pairs {
                                world.recv(b, a, bytes).expect("recv");
                            }
                        }
                        for &(a, b) in &rank_pairs {
                            world.send(b, a, 4).expect("ack");
                            world.recv(a, b, 4).expect("ack recv");
                        }
                    }
                    world.barrier();
                    let elapsed = world.time(rank_pairs[0].0).expect("rank").since(start);
                    let messages = pairs as u64 * WINDOW as u64 * iters as u64;
                    (
                        elapsed.bandwidth_gb_s(messages * bytes),
                        messages as f64 / elapsed.as_secs() / 1e6,
                    )
                });
                let bw: Samples = per_rep.iter().map(|&(bw, _)| bw).collect();
                let rate: Samples = per_rep.iter().map(|&(_, rate)| rate).collect();
                MbwMrPoint {
                    pairs,
                    aggregate_gb_s: bw.summary(),
                    msg_rate_m_per_s: rate.summary(),
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use doe_simtime::Jitter;
    use doe_topo::{NodeBuilder, NumaId, SocketId};

    fn topo() -> Arc<NodeTopology> {
        Arc::new(
            NodeBuilder::new("multi")
                .socket("A")
                .numa(SocketId(0))
                .cores(NumaId(0), 16, 1)
                .build()
                .expect("valid"),
        )
    }

    fn mpi() -> MpiConfig {
        let mut c = MpiConfig::default_host();
        c.jitter = Jitter::NONE;
        c
    }

    fn cfg() -> OsuConfig {
        let mut c = OsuConfig::quick();
        c.reps = 3;
        c.small_iters = 30;
        c.large_iters = 5;
        c
    }

    #[test]
    fn zero_byte_latency_is_load_insensitive() {
        // Tiny messages barely touch the copy port: latency stays flat.
        let t = topo();
        let pts = osu_multi_lat(&t, &mpi(), &[1, 4, 8], 0, &cfg(), 1).expect("fits");
        let lats: Vec<f64> = pts.iter().map(|p| p.one_way_us.mean).collect();
        assert!(
            (lats[2] - lats[0]).abs() / lats[0] < 0.05,
            "0-byte latency should not degrade: {lats:?}"
        );
    }

    #[test]
    fn large_messages_degrade_with_pair_count() {
        let t = topo();
        let pts = osu_multi_lat(&t, &mpi(), &[1, 4, 8], 64 * 1024, &cfg(), 1).expect("fits");
        let lats: Vec<f64> = pts.iter().map(|p| p.one_way_us.mean).collect();
        assert!(
            lats[2] > lats[0] * 2.0,
            "8 pairs should contend on the copy port: {lats:?}"
        );
        assert!(lats[1] > lats[0], "{lats:?}");
    }

    #[test]
    fn too_many_pairs_is_none() {
        let t = topo();
        assert!(osu_multi_lat(&t, &mpi(), &[100], 0, &cfg(), 1).is_none());
    }

    #[test]
    fn single_pair_matches_osu_latency_scale() {
        let t = topo();
        let pts = osu_multi_lat(&t, &mpi(), &[1], 0, &cfg(), 1).expect("fits");
        // o_s + shm + o_r ~= 0.31 us with the default config.
        assert!(
            (pts[0].one_way_us.mean - 0.31).abs() < 0.05,
            "{}",
            pts[0].one_way_us.mean
        );
    }

    #[test]
    fn message_rate_is_bounded_by_overheads_and_port() {
        let t = topo();
        let pts = osu_mbw_mr(&t, &mpi(), &[1, 4], 8, &cfg(), 1).expect("fits");
        // Small messages: rate limited by per-message software overhead
        // (~0.08 us/msg -> ~12 M msg/s per pair) but pairs run currently.
        assert!(pts[0].msg_rate_m_per_s.mean > 1.0);
        assert!(
            pts[1].msg_rate_m_per_s.mean > pts[0].msg_rate_m_per_s.mean,
            "more pairs should raise the aggregate small-message rate"
        );
    }

    #[test]
    fn aggregate_bandwidth_saturates_at_the_port() {
        let t = topo();
        let pts = osu_mbw_mr(&t, &mpi(), &[1, 4, 8], 64 * 1024, &cfg(), 1).expect("fits");
        let cap = mpi().shm_bandwidth;
        for p in &pts {
            assert!(
                p.aggregate_gb_s.mean <= cap * 1.05,
                "{} pairs exceed the shared port: {}",
                p.pairs,
                p.aggregate_gb_s.mean
            );
        }
        // One pair already fills most of the port for large messages.
        assert!(pts[0].aggregate_gb_s.mean > cap * 0.5);
    }

    #[test]
    fn zero_bytes_is_none() {
        let t = topo();
        assert!(osu_mbw_mr(&t, &mpi(), &[1], 0, &cfg(), 1).is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn results_are_per_pair_count_sorted_as_requested() {
        let t = topo();
        let req = [4usize, 1, 2];
        let pts = osu_multi_lat(&t, &mpi(), &req, 1024, &cfg(), 1).expect("fits");
        for i in 0..req.len() {
            assert_eq!(pts[i].pairs, req[i]);
        }
    }
}
