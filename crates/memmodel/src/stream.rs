//! The five BabelStream kernels and their traffic accounting.
//!
//! BabelStream 4.0 computes bandwidth as `bytes / time` where `bytes` counts
//! only the *algorithmic* traffic — "BabelStream 4.0 does not account for
//! any write-allocate traffic; the bandwidth numerator is twice the
//! allocation size for copy, mul, and dot, and three times the allocation
//! size for add and triad" (§3.1 of the paper). We reproduce exactly that
//! numerator, and separately expose the *actual* traffic (with
//! write-allocate) so the `ablation_wa` bench can quantify the difference.

use std::fmt;

/// A BabelStream kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StreamOp {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = scalar * c[i]`
    Mul,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + scalar * c[i]`
    Triad,
    /// `sum += a[i] * b[i]`
    Dot,
}

impl StreamOp {
    /// All kernels in BabelStream's execution order.
    pub const ALL: [StreamOp; 5] = [
        StreamOp::Copy,
        StreamOp::Mul,
        StreamOp::Add,
        StreamOp::Triad,
        StreamOp::Dot,
    ];

    /// Number of arrays touched per element in the *reported* numerator
    /// (BabelStream 4.0 convention, no write-allocate).
    pub fn reported_arrays(self) -> u64 {
        match self {
            StreamOp::Copy | StreamOp::Mul | StreamOp::Dot => 2,
            StreamOp::Add | StreamOp::Triad => 3,
        }
    }

    /// Number of arrays actually streamed through the memory system when
    /// stores write-allocate (each stored line is first read).
    pub fn actual_arrays(self) -> u64 {
        match self {
            StreamOp::Copy | StreamOp::Mul => 3, // 1 load + 1 store (+1 WA read)
            StreamOp::Add | StreamOp::Triad => 4, // 2 loads + 1 store (+1 WA read)
            StreamOp::Dot => 2,                  // loads only, no store
        }
    }

    /// Reported bytes moved for vectors of `n` `f64` elements.
    pub fn reported_bytes(self, n: u64) -> u64 {
        self.reported_arrays() * 8 * n
    }

    /// Actual bytes (with write-allocate) for vectors of `n` elements.
    pub fn actual_bytes(self, n: u64) -> u64 {
        self.actual_arrays() * 8 * n
    }

    /// Ratio of reported to actual traffic — the factor by which
    /// BabelStream's convention flatters a write-allocating machine.
    pub fn wa_inflation(self) -> f64 {
        self.actual_arrays() as f64 / self.reported_arrays() as f64
    }

    /// This kernel's position in [`StreamOp::ALL`].
    pub fn index(self) -> usize {
        match self {
            StreamOp::Copy => 0,
            StreamOp::Mul => 1,
            StreamOp::Add => 2,
            StreamOp::Triad => 3,
            StreamOp::Dot => 4,
        }
    }

    /// The kernel name as BabelStream prints it.
    pub fn name(self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Mul => "Mul",
            StreamOp::Add => "Add",
            StreamOp::Triad => "Triad",
            StreamOp::Dot => "Dot",
        }
    }

    /// True for the reduction kernel (different vectorization behaviour).
    pub fn is_reduction(self) -> bool {
        matches!(self, StreamOp::Dot)
    }
}

impl fmt::Display for StreamOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reported_bytes_match_babelstream_convention() {
        let n = 1_000_000;
        assert_eq!(StreamOp::Copy.reported_bytes(n), 2 * 8 * n);
        assert_eq!(StreamOp::Mul.reported_bytes(n), 2 * 8 * n);
        assert_eq!(StreamOp::Add.reported_bytes(n), 3 * 8 * n);
        assert_eq!(StreamOp::Triad.reported_bytes(n), 3 * 8 * n);
        assert_eq!(StreamOp::Dot.reported_bytes(n), 2 * 8 * n);
    }

    #[test]
    fn actual_traffic_includes_write_allocate() {
        // Stores add one extra read stream; dot has no store at all.
        assert_eq!(StreamOp::Copy.actual_arrays(), 3);
        assert_eq!(StreamOp::Triad.actual_arrays(), 4);
        assert_eq!(StreamOp::Dot.actual_arrays(), 2);
        assert!(StreamOp::Copy.wa_inflation() > 1.0);
        assert_eq!(StreamOp::Dot.wa_inflation(), 1.0);
    }

    #[test]
    fn names_and_order() {
        let names: Vec<_> = StreamOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["Copy", "Mul", "Add", "Triad", "Dot"]);
        assert_eq!(StreamOp::Triad.to_string(), "Triad");
    }

    #[test]
    fn only_dot_is_reduction() {
        assert!(StreamOp::Dot.is_reduction());
        assert!(StreamOp::ALL
            .iter()
            .filter(|o| o.is_reduction())
            .eq([&StreamOp::Dot]));
    }
}
