//! Memory-system sustained-bandwidth and latency models.
//!
//! BabelStream (and STREAM before it) measures *sustained* memory bandwidth,
//! which differs from the data-sheet peak in three machine-dependent ways
//! the paper's Table 4/5 "Peak" column makes visible:
//!
//! 1. **Sustained efficiency** — DRAM/HBM never reaches its pin rate under a
//!    streaming access pattern (row activations, refresh, write turnaround).
//! 2. **Per-core concurrency limits** — a single core can only keep
//!    `outstanding-misses × line-size / memory-latency` bytes in flight, so
//!    single-thread bandwidth (13–19 GB/s in Table 4) is far below the
//!    socket's capability.
//! 3. **Cache-mode overheads** — Knights Landing machines ran MCDRAM in
//!    "quad cache" mode, where tag checks and evictions tax every stream
//!    (Trinity), occasionally pathologically (Theta).
//!
//! [`MemDomainModel`] captures these as a small set of parameters and
//! produces the sustained bandwidth for a given [`StreamOp`] and thread
//! placement. The same struct models host DDR4, MCDRAM, and device HBM.

//! # Example
//!
//! ```
//! use doe_memmodel::{MemDomainModel, PlacementQuality, StreamOp};
//!
//! // A Xeon-class socket pair: 281.5 GB/s peak, 13 GB/s per core.
//! let mut mem = MemDomainModel::new("DDR4", 281.5, 13.0);
//! mem.sustained_efficiency = 0.85;
//! let single = mem.reported_bw(StreamOp::Triad, PlacementQuality::single());
//! let all = mem.reported_bw(StreamOp::Triad, PlacementQuality::all_cores(48));
//! assert!((single - 13.0).abs() < 1e-9);        // concurrency-limited
//! assert!((all - 281.5 * 0.85).abs() < 1e-9);   // domain-limited
//! ```

pub mod domain;
pub mod stream;

pub use domain::{MemDomainModel, PlacementQuality};
pub use stream::StreamOp;
