//! The memory-domain bandwidth model.

use doe_simtime::SimDuration;

use crate::stream::StreamOp;

/// How a set of benchmark threads landed on the domain's cores.
///
/// Produced by the OpenMP runtime from the `OMP_*` environment combination
/// (Table 1 of the paper); consumed here to derive achieved bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementQuality {
    /// Distinct physical cores actually used.
    pub cores_used: u32,
    /// Total software threads (may exceed `cores_used` under SMT).
    pub threads: u32,
    /// Whether threads were pinned (`OMP_PROC_BIND` set).
    pub bound: bool,
}

impl PlacementQuality {
    /// A single bound thread on one core.
    pub fn single() -> Self {
        PlacementQuality {
            cores_used: 1,
            threads: 1,
            bound: true,
        }
    }

    /// All of `cores` used, one bound thread each.
    pub fn all_cores(cores: u32) -> Self {
        PlacementQuality {
            cores_used: cores,
            threads: cores,
            bound: true,
        }
    }
}

/// Sustained-bandwidth model for one memory domain (host DDR4, MCDRAM, or
/// device HBM).
///
/// All bandwidths are GB/s decimal, matching the paper's tables.
#[derive(Clone, Debug)]
pub struct MemDomainModel {
    /// Human-readable description (e.g. "DDR4-2933 x12", "HBM2e 40GB").
    pub name: String,
    /// Theoretical peak bandwidth — the "Peak" column of Tables 4/5.
    pub peak_bw_gb_s: f64,
    /// Fraction of peak sustainable by an all-core streaming workload.
    pub sustained_efficiency: f64,
    /// Concurrency-limited bandwidth of a single core (GB/s).
    pub per_core_bw_gb_s: f64,
    /// Idle access latency.
    pub latency: SimDuration,
    /// True if streaming stores bypass write-allocate (non-temporal stores);
    /// GPUs and well-compiled STREAM binaries behave this way.
    pub nt_stores: bool,
    /// Multiplier (≤ 1) for cache-mode overheads (KNL quad-cache; carries
    /// Theta's anomalous degradation — see DESIGN.md "Known deviations").
    pub cache_mode_penalty: f64,
    /// Multiplier (≤ 1) applied when threads are not pinned.
    pub unbound_efficiency: f64,
    /// Multiplier (≤ 1) applied when SMT oversubscribes cores.
    pub smt_penalty: f64,
    /// Small per-op efficiency adjustments indexed by [`StreamOp::ALL`]
    /// order (Copy, Mul, Add, Triad, Dot).
    pub op_efficiency: [f64; 5],
    /// Last-level-cache capacity in bytes; `0` disables cache modelling.
    /// When a kernel's working set fits, bandwidth scales by
    /// [`MemDomainModel::llc_bw_factor`] — the cache cliff visible in any
    /// real STREAM size sweep below ~L3 capacity.
    pub llc_bytes: u64,
    /// Bandwidth multiplier (> 1) for cache-resident working sets.
    pub llc_bw_factor: f64,
}

impl MemDomainModel {
    /// A model with neutral secondary parameters; callers override fields.
    pub fn new(name: impl Into<String>, peak_bw_gb_s: f64, per_core_bw_gb_s: f64) -> Self {
        assert!(peak_bw_gb_s > 0.0, "peak bandwidth must be positive");
        assert!(
            per_core_bw_gb_s > 0.0,
            "per-core bandwidth must be positive"
        );
        MemDomainModel {
            name: name.into(),
            peak_bw_gb_s,
            sustained_efficiency: 0.85,
            per_core_bw_gb_s,
            latency: SimDuration::from_ns(90.0),
            nt_stores: true,
            cache_mode_penalty: 1.0,
            unbound_efficiency: 0.93,
            smt_penalty: 0.97,
            op_efficiency: [1.0; 5],
            llc_bytes: 0,
            llc_bw_factor: 2.5,
        }
    }

    fn op_index(op: StreamOp) -> usize {
        op.index()
    }

    /// Raw sustainable traffic rate (actual bytes per second) for a
    /// placement, before any reporting convention.
    pub fn raw_sustained_bw(&self, placement: PlacementQuality) -> f64 {
        assert!(placement.cores_used > 0, "placement uses no cores");
        let core_limited = placement.cores_used as f64 * self.per_core_bw_gb_s;
        // The cache-mode tax bites under contention (tag traffic and
        // evictions compete with demand streams), so it derates the
        // domain-limited term: a single Theta core still streams at full
        // speed while the saturated chip collapses (Table 4).
        let domain_limited =
            self.peak_bw_gb_s * self.sustained_efficiency * self.cache_mode_penalty;
        let mut bw = core_limited.min(domain_limited);
        if !placement.bound {
            bw *= self.unbound_efficiency;
        }
        if placement.threads > placement.cores_used {
            bw *= self.smt_penalty;
        }
        bw
    }

    /// Bandwidth in BabelStream's *reported* convention for `op`: raw
    /// traffic rate scaled by the reported/actual byte ratio when stores
    /// write-allocate, plus the per-op efficiency adjustment.
    pub fn reported_bw(&self, op: StreamOp, placement: PlacementQuality) -> f64 {
        let mut bw = self.raw_sustained_bw(placement) * self.op_efficiency[Self::op_index(op)];
        if !self.nt_stores {
            bw *= op.reported_arrays() as f64 / op.actual_arrays() as f64;
        }
        bw
    }

    /// [`MemDomainModel::reported_bw`] with the working-set size taken
    /// into account: three `n`-element f64 arrays that fit in the LLC run
    /// at cache bandwidth.
    pub fn reported_bw_sized(&self, op: StreamOp, n: u64, placement: PlacementQuality) -> f64 {
        let bw = self.reported_bw(op, placement);
        let working_set = 3 * 8 * n;
        if self.llc_bytes > 0 && working_set <= self.llc_bytes {
            bw * self.llc_bw_factor.max(1.0)
        } else {
            bw
        }
    }

    /// Virtual time for one iteration of `op` over `n` f64 elements.
    pub fn kernel_time(&self, op: StreamOp, n: u64, placement: PlacementQuality) -> SimDuration {
        SimDuration::transfer(
            op.reported_bytes(n),
            self.reported_bw_sized(op, n, placement),
        )
    }

    /// Convenience: best reported bandwidth over all five kernels.
    pub fn best_reported_bw(&self, placement: PlacementQuality) -> (StreamOp, f64) {
        StreamOp::ALL
            .iter()
            .map(|&op| (op, self.reported_bw(op, placement)))
            .fold((StreamOp::Copy, f64::NEG_INFINITY), |best, cur| {
                if cur.1.total_cmp(&best.1).is_gt() {
                    cur
                } else {
                    best
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ddr() -> MemDomainModel {
        MemDomainModel::new("DDR4 test", 280.0, 13.0)
    }

    #[test]
    fn single_core_is_core_limited() {
        let m = ddr();
        let bw = m.raw_sustained_bw(PlacementQuality::single());
        assert!((bw - 13.0).abs() < 1e-9);
    }

    #[test]
    fn all_cores_is_domain_limited() {
        let m = ddr();
        let bw = m.raw_sustained_bw(PlacementQuality::all_cores(48));
        // 48 * 13 = 624 > 280 * 0.85 = 238
        assert!((bw - 238.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_is_linear_until_saturation() {
        let m = ddr();
        let b4 = m.raw_sustained_bw(PlacementQuality::all_cores(4));
        let b8 = m.raw_sustained_bw(PlacementQuality::all_cores(8));
        assert!((b8 / b4 - 2.0).abs() < 1e-9);
        let b100 = m.raw_sustained_bw(PlacementQuality::all_cores(100));
        let b200 = m.raw_sustained_bw(PlacementQuality::all_cores(200));
        assert_eq!(b100, b200);
    }

    #[test]
    fn unbound_and_smt_penalties_apply() {
        let m = ddr();
        let bound = m.raw_sustained_bw(PlacementQuality::all_cores(8));
        let unbound = m.raw_sustained_bw(PlacementQuality {
            cores_used: 8,
            threads: 8,
            bound: false,
        });
        let smt = m.raw_sustained_bw(PlacementQuality {
            cores_used: 8,
            threads: 16,
            bound: true,
        });
        assert!(unbound < bound);
        assert!(smt < bound);
        assert!((unbound / bound - m.unbound_efficiency).abs() < 1e-9);
        assert!((smt / bound - m.smt_penalty).abs() < 1e-9);
    }

    #[test]
    fn write_allocate_shrinks_reported_bw_for_store_ops_only() {
        let mut m = ddr();
        m.nt_stores = false;
        let p = PlacementQuality::single();
        let copy = m.reported_bw(StreamOp::Copy, p);
        let dot = m.reported_bw(StreamOp::Dot, p);
        // Dot has no store: unaffected. Copy loses a third.
        assert!((dot - 13.0).abs() < 1e-9);
        assert!((copy - 13.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_time_matches_bandwidth() {
        let m = ddr();
        let p = PlacementQuality::all_cores(48);
        let n = 1u64 << 24;
        let t = m.kernel_time(StreamOp::Triad, n, p);
        let implied = t.bandwidth_gb_s(StreamOp::Triad.reported_bytes(n));
        let want = m.reported_bw(StreamOp::Triad, p);
        assert!((implied - want).abs() / want < 1e-6);
    }

    #[test]
    fn best_op_respects_op_efficiency() {
        let mut m = ddr();
        m.op_efficiency = [1.0, 1.0, 1.0, 1.03, 1.0]; // favour Triad
        let (op, _) = m.best_reported_bw(PlacementQuality::single());
        assert_eq!(op, StreamOp::Triad);
    }

    #[test]
    fn cache_mode_penalty_derates_the_domain_limit_only() {
        let mut m = ddr();
        m.cache_mode_penalty = 0.5;
        let all = m.raw_sustained_bw(PlacementQuality::all_cores(48));
        assert!((all - 119.0).abs() < 1e-9);
        // A single core stays below the derated domain limit: unaffected.
        let single = m.raw_sustained_bw(PlacementQuality::single());
        assert!((single - 13.0).abs() < 1e-9);
    }

    #[test]
    fn llc_boosts_cache_resident_working_sets_only() {
        let mut m = ddr();
        m.llc_bytes = 32 * 1024 * 1024;
        m.llc_bw_factor = 3.0;
        let p = PlacementQuality::all_cores(48);
        let small = m.reported_bw_sized(StreamOp::Triad, 64 * 1024, p); // 1.5 MiB set
        let big = m.reported_bw_sized(StreamOp::Triad, 16 * 1024 * 1024, p); // 384 MiB set
        assert!((small / big - 3.0).abs() < 1e-9, "small={small} big={big}");
        // Disabled LLC: no boost anywhere.
        m.llc_bytes = 0;
        let off = m.reported_bw_sized(StreamOp::Triad, 64 * 1024, p);
        assert_eq!(off, big);
    }

    #[test]
    fn kernel_time_reflects_the_cache_cliff() {
        let mut m = ddr();
        m.llc_bytes = 32 * 1024 * 1024;
        let p = PlacementQuality::single();
        let n_small = 64 * 1024u64;
        let t_small = m.kernel_time(StreamOp::Copy, n_small, p);
        let implied = t_small.bandwidth_gb_s(StreamOp::Copy.reported_bytes(n_small));
        assert!(implied > 13.0 * 2.0, "implied={implied}");
    }

    #[test]
    #[should_panic(expected = "uses no cores")]
    fn zero_core_placement_panics() {
        ddr().raw_sustained_bw(PlacementQuality {
            cores_used: 0,
            threads: 0,
            bound: true,
        });
    }

    proptest! {
        /// Bandwidth is monotonically non-decreasing in cores used.
        #[test]
        fn prop_monotone_in_cores(c1 in 1u32..256, c2 in 1u32..256) {
            let m = ddr();
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            prop_assert!(
                m.raw_sustained_bw(PlacementQuality::all_cores(lo))
                    <= m.raw_sustained_bw(PlacementQuality::all_cores(hi)) + 1e-12
            );
        }

        /// Reported bandwidth never exceeds raw for any op.
        #[test]
        fn prop_reported_le_raw_times_opeff(cores in 1u32..128) {
            let mut m = ddr();
            m.nt_stores = false;
            let p = PlacementQuality::all_cores(cores);
            for &op in &StreamOp::ALL {
                prop_assert!(m.reported_bw(op, p) <= m.raw_sustained_bw(p) + 1e-12);
            }
        }
    }
}
