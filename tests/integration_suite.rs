//! Cross-crate suite behaviour: figures, reports, determinism, and the
//! machine registry's static tables.

use doebench::{experiments, figures, Campaign};

#[test]
fn figures_1_to_3_render_in_both_formats() {
    for f in 1..=3u8 {
        let ascii = figures::render_ascii(f).expect("figure renders");
        assert!(ascii.lines().count() > 10, "figure {f} too small");
        let dot = figures::render_dot(f).expect("dot renders");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}

#[test]
fn figure_machines_match_the_paper_captions() {
    assert_eq!(figures::figure_machine(1), Some("Frontier"));
    assert_eq!(figures::figure_machine(2), Some("Summit"));
    assert_eq!(figures::figure_machine(3), Some("Perlmutter"));
}

#[test]
fn tables_2_3_8_9_come_from_the_registry() {
    // Table 2: five CPU machines with the right locations.
    let cpus = doebench::machines::cpu_machines();
    let locs: Vec<&str> = cpus.iter().map(|m| m.location).collect();
    assert_eq!(locs, vec!["LANL", "ANL", "INL", "NREL", "SNL"]);
    // Table 3: eight GPU machines; Perlmutter uses 40GB A100s.
    let gpus = doebench::machines::gpu_machines();
    assert_eq!(gpus.len(), 8);
    let perl = doebench::machines::by_name("Perlmutter").unwrap();
    assert!(perl.gpu_models[0].hbm.name.contains("40GB"));
    // Tables 8/9: every machine has a software environment; GPU machines
    // have a device library.
    for m in doebench::machines::all_machines() {
        assert!(!m.software.compiler.is_empty());
        assert!(!m.software.mpi.is_empty());
        assert_eq!(m.software.device_library.is_some(), m.is_accelerated());
    }
}

#[test]
fn campaigns_are_deterministic_end_to_end() {
    let c = Campaign::quick();
    let m = doebench::machines::by_name("Tioga").unwrap();
    let a = doebench::table6::run_machine(&m, &c);
    let b = doebench::table6::run_machine(&m, &c);
    assert_eq!(a.launch_us.mean, b.launch_us.mean);
    assert_eq!(a.hd_latency_us.mean, b.hd_latency_us.mean);
    let a5 = doebench::table5::run_machine(&m, &c);
    let b5 = doebench::table5::run_machine(&m, &c);
    assert_eq!(a5.device_bw.mean, b5.device_bw.mean);
    assert_eq!(a5.host_to_host.std, b5.host_to_host.std);
}

#[test]
fn sigma_is_nonzero_but_small_like_the_paper() {
    let c = Campaign::quick();
    let m = doebench::machines::by_name("Frontier").unwrap();
    let row5 = doebench::table5::run_machine(&m, &c);
    let row6 = doebench::table6::run_machine(&m, &c);
    for (what, s) in [
        ("device bw", &row5.device_bw),
        ("h2h", &row5.host_to_host),
        ("launch", &row6.launch_us),
        ("hd latency", &row6.hd_latency_us),
    ] {
        assert!(s.std > 0.0, "{what}: zero sigma");
        assert!(
            s.rel_std() < 0.10,
            "{what}: rel sigma {} too large",
            s.rel_std()
        );
    }
}

#[test]
fn markdown_report_is_complete_and_well_formed() {
    let r = experiments::run_all(&Campaign::quick());
    let md = experiments::render_markdown(&r);
    // One regenerated table + one comparison table for 4/5/6, plus 7.
    assert_eq!(md.matches("**Table 4").count(), 2);
    assert_eq!(md.matches("**Table 5").count(), 2);
    assert_eq!(md.matches("**Table 6").count(), 2);
    assert_eq!(md.matches("**Table 7").count(), 1);
    // Every pipe row balances.
    for line in md.lines().filter(|l| l.starts_with('|')) {
        assert!(line.ends_with('|'), "unterminated row: {line}");
    }
}

#[test]
fn csv_export_roundtrips_row_counts() {
    let c = Campaign::quick();
    let rows = vec![doebench::table6::run_machine(
        &doebench::machines::by_name("Polaris").unwrap(),
        &c,
    )];
    let table = doebench::table6::render(&rows);
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 1 + rows.len());
    assert!(csv.starts_with("Rank/Name,"));
}
