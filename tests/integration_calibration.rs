//! Calibration: simulated means vs. the paper's published means, per
//! machine and per metric.
//!
//! Tolerances are deliberately asymmetric with EXPERIMENTS.md: headline
//! metrics (the ones the paper's prose discusses) must land within a few
//! percent; secondary cells (e.g. the MI250X D-class copies, whose routing
//! the paper itself cannot explain) get a wider band. DESIGN.md "Known
//! deviations" lists the cells excluded here.

use doebench::machines::paper;
use doebench::topo::LinkClass;
use doebench::{table4, table5, table6, Campaign};

fn close(paper: f64, got: f64, rel_tol: f64, what: &str) {
    let rel = (got - paper).abs() / paper.abs().max(1e-12);
    assert!(
        rel <= rel_tol,
        "{what}: measured {got:.3} vs paper {paper:.3} ({:.1}% off, tol {:.0}%)",
        rel * 100.0,
        rel_tol * 100.0
    );
}

#[test]
fn table4_all_machines_calibrated() {
    let c = Campaign::quick();
    for m in doebench::machines::cpu_machines() {
        let row = table4::run_machine(&m, &c);
        let p = paper::table4_row(m.name).expect("reference row");
        close(
            p.single.0,
            row.single.mean,
            0.08,
            &format!("{} single", m.name),
        );
        close(p.all.0, row.all.mean, 0.08, &format!("{} all", m.name));
        close(
            p.on_socket.0,
            row.on_socket.mean,
            0.10,
            &format!("{} on-socket", m.name),
        );
        close(
            p.on_node.0,
            row.on_node.mean,
            0.10,
            &format!("{} on-node", m.name),
        );
    }
}

#[test]
fn table5_device_bandwidth_calibrated() {
    let c = Campaign::quick();
    for m in doebench::machines::gpu_machines() {
        let row = table5::run_machine(&m, &c);
        let p = paper::table5_row(m.name).expect("reference row");
        close(
            p.device_bw.0,
            row.device_bw.mean,
            0.08,
            &format!("{} device bw", m.name),
        );
        close(
            p.host_to_host.0,
            row.host_to_host.mean,
            0.12,
            &format!("{} h2h", m.name),
        );
    }
}

#[test]
fn table5_device_mpi_calibrated() {
    let c = Campaign::quick();
    let classes = [LinkClass::A, LinkClass::B, LinkClass::C, LinkClass::D];
    for m in doebench::machines::gpu_machines() {
        let row = table5::run_machine(&m, &c);
        let p = paper::table5_row(m.name).expect("reference row");
        for (i, class) in classes.iter().enumerate() {
            if let (Some((mean, _)), Some(s)) = (p.d2d[i], row.d2d.get(class)) {
                // Staged-path compromises (X-Bus latency serves both MPI
                // and Comm|Scope) give the B class a wider band.
                let tol = if *class == LinkClass::A { 0.10 } else { 0.25 };
                close(mean, s.mean, tol, &format!("{} d2d {class}", m.name));
            }
        }
    }
}

#[test]
fn table6_launch_and_wait_calibrated() {
    let c = Campaign::quick();
    for m in doebench::machines::gpu_machines() {
        let row = table6::run_machine(&m, &c);
        let p = paper::table6_row(m.name).expect("reference row");
        close(
            p.launch.0,
            row.launch_us.mean,
            0.06,
            &format!("{} launch", m.name),
        );
        close(
            p.wait.0,
            row.wait_us.mean,
            0.10,
            &format!("{} wait", m.name),
        );
        close(
            p.hd_latency.0,
            row.hd_latency_us.mean,
            0.08,
            &format!("{} hd latency", m.name),
        );
        close(
            p.hd_bandwidth.0,
            row.hd_bandwidth_gb_s.mean,
            0.06,
            &format!("{} hd bandwidth", m.name),
        );
    }
}

#[test]
fn table6_d2d_classes_calibrated() {
    let c = Campaign::quick();
    let classes = [LinkClass::A, LinkClass::B, LinkClass::C, LinkClass::D];
    for m in doebench::machines::gpu_machines() {
        let row = table6::run_machine(&m, &c);
        let p = paper::table6_row(m.name).expect("reference row");
        for (i, class) in classes.iter().enumerate() {
            if let (Some((mean, _)), Some(s)) = (p.d2d[i], row.d2d_latency_us.get(class)) {
                // D-class copies on MI250X machines take a route the paper
                // itself could not reconcile (D ~= A there); our router's
                // cheapest path lands within ~10-30%. Documented deviation.
                let tol = match *class {
                    LinkClass::A => 0.08,
                    LinkClass::B | LinkClass::C => 0.15,
                    LinkClass::D => 0.35,
                };
                close(
                    mean,
                    s.mean,
                    tol,
                    &format!("{} commscope d2d {class}", m.name),
                );
            }
        }
    }
}

#[test]
fn table7_ranges_reproduce_paper_bands() {
    // Check the printed Table 7 bands rather than single cells: each
    // simulated range must overlap the paper's published range.
    let c = Campaign::quick();
    let t5 = table5::run(&c);
    let t6 = table6::run(&c);
    let rows = doebench::table7::summarize(&t5, &t6);
    let paper_bands = [
        // (label, memory bw, mpi lat, launch)
        ("V100", (786.43, 861.40), (18.10, 19.76), (4.13, 4.84)),
        ("A100", (1362.75, 1363.74), (10.42, 13.50), (1.77, 1.83)),
        ("MI250X", (1291.38, 1336.81), (0.44, 0.50), (1.51, 2.16)),
    ];
    for (label, bw, mpi, launch) in paper_bands {
        let row = rows
            .iter()
            .find(|r| r.accelerator.label() == label)
            .expect("generation present");
        let overlaps = |sim_min: f64, sim_max: f64, lo: f64, hi: f64| {
            sim_min <= hi * 1.1 && sim_max >= lo * 0.9
        };
        assert!(
            overlaps(row.memory_bw.min, row.memory_bw.max, bw.0, bw.1),
            "{label} memory bw {:?} vs paper {bw:?}",
            row.memory_bw
        );
        assert!(
            overlaps(row.mpi_latency.min, row.mpi_latency.max, mpi.0, mpi.1),
            "{label} mpi {:?} vs paper {mpi:?}",
            row.mpi_latency
        );
        assert!(
            overlaps(
                row.kernel_launch.min,
                row.kernel_launch.max,
                launch.0,
                launch.1
            ),
            "{label} launch {:?} vs paper {launch:?}",
            row.kernel_launch
        );
    }
}
