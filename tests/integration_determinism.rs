//! The parallel executor's core contract: a campaign's rendered output is
//! byte-identical at any worker count. `--jobs 1` is the serial oracle;
//! `--jobs 8` oversubscribes the grid so chunk boundaries differ from any
//! natural core count.
//!
//! Kept in one `#[test]` because the jobs override is process-global.

use doebench::benchlib::set_jobs;
use doebench::{table4, table5, table6, table7, Campaign};

/// Every rendered table at the given worker count, concatenated.
fn campaign_output(jobs: usize) -> String {
    set_jobs(jobs);
    let c = Campaign::quick();
    let t4 = table4::run(&c);
    let t5 = table5::run(&c);
    let t6 = table6::run(&c);
    let t7 = table7::summarize(&t5, &t6);
    format!(
        "{}\n{}\n{}\n{}\n",
        table4::render(&t4).to_ascii(),
        table5::render(&t5).to_ascii(),
        table6::render(&t6).to_ascii(),
        table7::render(&t7).to_ascii(),
    )
}

#[test]
fn rendered_tables_are_byte_identical_across_job_counts() {
    let serial = campaign_output(1);
    let parallel = campaign_output(8);
    // Sanity: the campaign actually produced every table before comparing.
    for needle in ["Table 4", "Table 5", "Table 6", "Table 7"] {
        assert!(serial.contains(needle), "missing {needle} in output");
    }
    assert!(
        serial == parallel,
        "jobs=1 and jobs=8 rendered output diverged:\n--- jobs=1 ---\n{serial}\n--- jobs=8 ---\n{parallel}"
    );
}
