//! Integration coverage of the beyond-the-tables features: self-checks,
//! explanations, tracing, multi-pair loading, collectives, and the
//! extension studies — exercised together, at repo level.

use doebench::{studies, verify, Campaign};

#[test]
fn self_check_reproduces_every_headline_claim() {
    let claims = verify::run_checks(&Campaign::quick());
    let failed: Vec<_> = claims.iter().filter(|c| !c.pass).collect();
    assert!(
        failed.is_empty(),
        "failed claims: {:?}",
        failed.iter().map(|c| c.name).collect::<Vec<_>>()
    );
}

#[test]
fn explanations_agree_with_paper_values_inline() {
    // Every machine's explanation must cite at least one paper value, and
    // the algebra lines must reassemble (spot-checked via the identities
    // already proven in doe-machines; here we check the rendering).
    for m in doebench::machines::all_machines() {
        let report = doebench::explain::machine_report(m.name).expect("report renders");
        assert!(
            report.contains("(paper:"),
            "{}: no paper citations in explanation",
            m.name
        );
        assert!(report.contains(&m.table_label()));
    }
}

#[test]
fn gpu_trace_covers_a_full_benchmark_iteration() {
    let m = doebench::machines::by_name("Perlmutter").expect("machine");
    let mut rt = doebench::gpurt::GpuRuntime::new(m.topo.clone(), m.gpu_models.clone(), 7);
    rt.enable_tracing();
    let dev = rt.current_device();
    let s = rt.default_stream(dev).expect("stream");
    let numa = m.topo.device(dev).expect("device").local_numa;
    let host = doebench::gpurt::Buffer::pinned_host(numa, 1 << 20);
    let devb = doebench::gpurt::Buffer::device(dev, 1 << 20);
    rt.launch_empty(&s).expect("launch");
    rt.memcpy_async(&devb, &host, 128, &s).expect("copy");
    rt.stream_synchronize(&s).expect("sync");
    let trace = rt.take_trace().expect("trace enabled");
    // The spans reconstruct the benchmark's structure: kernel, copy (on a
    // wire and on the stream), and the host's sync wait.
    let cats: std::collections::HashSet<&str> = trace.spans().iter().map(|s| s.category).collect();
    assert!(cats.contains("gpu") && cats.contains("wire") && cats.contains("host"));
    // Spans never start before time zero and have sane durations.
    for span in trace.spans() {
        assert!(span.duration.as_us() < 1e6);
    }
    // Busy-by-track aggregation covers the stream track.
    let busy = trace.busy_by_track();
    assert!(busy.iter().any(|(t, _)| t.contains("stream")));
}

#[test]
fn multi_pair_loading_shapes_hold_on_a_paper_machine() {
    use doebench::osu::{osu_mbw_mr, osu_multi_lat, OsuConfig};
    let m = doebench::machines::by_name("Manzano").expect("machine");
    let mut cfg = OsuConfig::quick();
    cfg.reps = 3;
    let lat = osu_multi_lat(&m.topo, &m.mpi, &[1, 8], 64 * 1024, &cfg, 1).expect("fits");
    assert!(
        lat[1].one_way_us.mean > lat[0].one_way_us.mean,
        "loaded large-message latency must degrade"
    );
    let bw = osu_mbw_mr(&m.topo, &m.mpi, &[1, 8], 64 * 1024, &cfg, 1).expect("fits");
    assert!(bw[1].aggregate_gb_s.mean <= m.mpi.shm_bandwidth * 1.05);
}

#[test]
fn studies_compose_on_one_seed() {
    let c = Campaign::quick();
    // Future work 1: contention series monotone.
    let series = studies::contention_series(1, 4);
    assert!(series.windows(2).all(|w| w[1].1 <= w[0].1 * 1.01));
    // Future work 3: three extension rows.
    assert_eq!(studies::cpu_vendor_table(&c).rows.len(), 3);
    // Future work 4: four MPI variants on Summit.
    assert_eq!(
        studies::mpi_variant_table("Summit", &c)
            .expect("machine")
            .rows
            .len(),
        4
    );
    // Placement study returns packed + spread.
    assert_eq!(studies::placement_study(1, 8, 1 << 20).len(), 2);
}

#[test]
fn bundle_and_markdown_report_are_consistent() {
    let results = doebench::experiments::run_all(&Campaign::quick());
    let md = doebench::experiments::render_markdown(&results);
    let dir = std::env::temp_dir().join(format!("doebench-it-{}", std::process::id()));
    let files = doebench::bundle::write_bundle(&results, &dir).expect("bundle");
    let report = std::fs::read_to_string(dir.join("report.md")).expect("read");
    assert_eq!(md, report, "bundle report must match the inline render");
    assert!(files.contains(&"table6.csv".to_string()));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
