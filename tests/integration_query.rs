//! Cache-key contract tests for the typed query API.
//!
//! The daemon's correctness rests on two properties proven here:
//!
//! 1. **Canonical serialization is injective and byte-stable** — two
//!    distinct queries never serialize to the same bytes (else the
//!    cache would alias unrelated results), and re-serializing a parsed
//!    query reproduces the exact input bytes (else the same query could
//!    occupy two cache keys).
//! 2. **Content hashes track spec content precisely** — flipping any
//!    single machine-spec field changes that machine's digest and cell
//!    keys, while every other machine's keys stay bit-identical (the
//!    precise-invalidation contract).

use doe_simtime::SimDuration;
use doebench::query::{
    machine_digest, plan, MachineSel, OverrideField, Profile, Query, QueryParams, SpecOverride,
    TableId,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random query generation
// ---------------------------------------------------------------------

const CPU_NAMES: [&str; 5] = ["Trinity", "Theta", "Sawtooth", "Eagle", "Manzano"];
const GPU_NAMES: [&str; 8] = [
    "Summit",
    "Sierra",
    "Lassen",
    "Perlmutter",
    "Polaris",
    "Frontier",
    "RZVernal",
    "Tioga",
];

fn some_names(pool: &'static [&'static str]) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(proptest::sample::select(pool.to_vec()), 1..4).prop_map(|names| {
        let mut out: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        out.dedup();
        out
    })
}

fn params_strategy() -> impl Strategy<Value = QueryParams> {
    let profile = prop_oneof![Just(Profile::Quick), Just(Profile::Paper)];
    let seed = prop_oneof![Just(None), (0u64..u64::MAX).prop_map(Some),];
    let overrides = proptest::collection::vec(
        (
            proptest::sample::select(GPU_NAMES.to_vec()),
            proptest::sample::select(vec![
                OverrideField::HostPeakBwGbS,
                OverrideField::MpiShmLatencyUs,
                OverrideField::GpuLaunchUs,
                OverrideField::GpuPeakBwGbS,
            ]),
            1u64..10_000,
        ),
        0..3,
    )
    .prop_map(|triples| {
        triples
            .into_iter()
            .map(|(machine, field, v)| SpecOverride {
                machine: machine.to_string(),
                field,
                value: v as f64 / 8.0,
            })
            .collect()
    });
    (profile, seed, overrides).prop_map(|(profile, seed, overrides)| QueryParams {
        profile,
        seed,
        overrides,
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    let table = (
        prop_oneof![
            Just((TableId::Table4, &CPU_NAMES[..])),
            Just((TableId::Table5, &GPU_NAMES[..])),
            Just((TableId::Table6, &GPU_NAMES[..])),
        ],
        0u64..3,
        params_strategy(),
    )
        .prop_map(|((id, pool), sel, params)| {
            // `sel` picks All vs a pseudo-random named subset drawn from
            // the pool by slicing (dedup keeps canonical behavior).
            let machines = if sel == 0 {
                MachineSel::All
            } else {
                MachineSel::Named(
                    pool.iter()
                        .take(sel as usize)
                        .map(|s| s.to_string())
                        .collect(),
                )
            };
            Query::Table {
                id,
                machines,
                params,
            }
        });
    let sweep = (some_names(&CPU_NAMES), params_strategy())
        .prop_map(|(machines, params)| Query::Sweep { machines, params });
    let suite = params_strategy().prop_map(|params| Query::Suite { params });
    prop_oneof![table.boxed(), sweep.boxed(), suite.boxed()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip: parse(canonical(q)) == q, and the re-serialization is
    /// byte-identical (one query, one cache key — forever).
    #[test]
    fn canonical_serialization_is_byte_stable(q in query_strategy()) {
        let canon = q.canonical();
        let parsed = Query::parse(&canon).expect("canonical form parses");
        prop_assert_eq!(&parsed, &q);
        prop_assert_eq!(parsed.canonical(), canon);
    }

    /// Injectivity: distinct queries never share a serialization (the
    /// cache key is derived from these bytes).
    #[test]
    fn canonical_serialization_is_injective(a in query_strategy(), b in query_strategy()) {
        if a != b {
            prop_assert_ne!(a.canonical(), b.canonical());
        } else {
            prop_assert_eq!(a.canonical(), b.canonical());
        }
    }

    /// Whitespace and key order do not matter on the way in; the
    /// canonical form is still recovered exactly.
    #[test]
    fn parse_accepts_reordered_fields(seed in 0u64..u64::MAX) {
        let scrambled = format!(
            "{{ \"seed\": \"{seed:#x}\", \"kind\": \"table\",\n  \"machines\": \"all\",
               \"table\": \"table4\", \"profile\": \"paper\", \"overrides\": [] }}"
        );
        let q = Query::parse(&scrambled).expect("scrambled form parses");
        let expect = Query::Table {
            id: TableId::Table4,
            machines: MachineSel::All,
            params: QueryParams { profile: Profile::Paper, seed: Some(seed), overrides: vec![] },
        };
        prop_assert_eq!(&q, &expect);
        prop_assert_eq!(Query::parse(&q.canonical()).unwrap().canonical(), q.canonical());
    }
}

// ---------------------------------------------------------------------
// Seeded machine-spec mutations: every field flip must move the digest
// ---------------------------------------------------------------------

/// One targeted mutation of a machine spec.
struct Mutation {
    name: &'static str,
    apply: fn(&mut doe_machines::Machine),
}

/// Mutators covering every model family a spec digest must observe.
fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "host peak bandwidth",
            apply: |m| m.host_mem.peak_bw_gb_s += 1.0,
        },
        Mutation {
            name: "host sustained efficiency",
            apply: |m| m.host_mem.sustained_efficiency *= 0.99,
        },
        Mutation {
            name: "host per-core bandwidth",
            apply: |m| m.host_mem.per_core_bw_gb_s += 0.5,
        },
        Mutation {
            name: "stream jitter",
            apply: |m| m.host_stream_jitter.rel_sigma += 0.001,
        },
        Mutation {
            name: "mpi shm latency",
            apply: |m| m.mpi.shm_latency = SimDuration::from_us(123.4),
        },
        Mutation {
            name: "mpi send overhead",
            apply: |m| m.mpi.send_overhead = SimDuration::from_us(9.9),
        },
        Mutation {
            name: "mpi recv overhead",
            apply: |m| m.mpi.recv_overhead = SimDuration::from_us(8.8),
        },
        Mutation {
            name: "gpu launch overhead",
            apply: |m| {
                if let Some(g) = m.gpu_models.first_mut() {
                    g.launch_overhead = SimDuration::from_us(77.0);
                }
            },
        },
        Mutation {
            name: "gpu sync overhead",
            apply: |m| {
                if let Some(g) = m.gpu_models.first_mut() {
                    g.sync_overhead = SimDuration::from_us(66.0);
                }
            },
        },
        Mutation {
            name: "gpu hbm bandwidth",
            apply: |m| {
                if let Some(g) = m.gpu_models.first_mut() {
                    g.hbm.peak_bw_gb_s += 10.0;
                }
            },
        },
    ]
}

#[test]
fn every_spec_field_flip_changes_the_digest() {
    for base_name in ["Frontier", "Eagle"] {
        let base = doe_machines::by_name(base_name).unwrap();
        let base_digest = machine_digest(&base);
        for mutation in mutations() {
            let mut mutated = base.clone();
            (mutation.apply)(&mut mutated);
            if mutated.gpu_models.is_empty() && mutation.name.starts_with("gpu") {
                continue; // mutation is a no-op on a CPU machine
            }
            assert_ne!(
                machine_digest(&mutated),
                base_digest,
                "{base_name}: mutating {} must change the digest",
                mutation.name
            );
        }
        // Digest is a pure function: an untouched clone matches.
        assert_eq!(machine_digest(&base.clone()), base_digest);
    }
}

#[test]
fn override_moves_only_the_target_machines_cell_keys() {
    let base = Query::Table {
        id: TableId::Table6,
        machines: MachineSel::All,
        params: QueryParams::quick(),
    };
    for field in [
        OverrideField::GpuLaunchUs,
        OverrideField::GpuSyncUs,
        OverrideField::GpuPeakBwGbS,
        OverrideField::MpiShmLatencyUs,
        OverrideField::HostPeakBwGbS,
    ] {
        let tweaked = Query::Table {
            id: TableId::Table6,
            machines: MachineSel::All,
            params: QueryParams {
                overrides: vec![SpecOverride {
                    machine: "Frontier".into(),
                    field,
                    value: 432.1,
                }],
                ..QueryParams::quick()
            },
        };
        let p0 = plan(&base).unwrap();
        let p1 = plan(&tweaked).unwrap();
        assert_eq!(p0.cells().len(), p1.cells().len());
        let mut frontier_cells = 0;
        for (c0, c1) in p0.cells().iter().zip(p1.cells()) {
            assert_eq!(c0.key.machine, c1.key.machine);
            if c0.key.machine == "Frontier" {
                frontier_cells += 1;
                assert_ne!(
                    c0.key.canon, c1.key.canon,
                    "{field:?} override must move Frontier's key"
                );
                assert_ne!(c0.key.hash, c1.key.hash);
            } else {
                assert_eq!(
                    c0.key.canon, c1.key.canon,
                    "{field:?} override must not move {}'s key",
                    c0.key.machine
                );
            }
        }
        assert!(frontier_cells > 0);
    }
}

#[test]
fn profile_and_seed_partition_the_key_space() {
    let mk = |profile, seed| Query::Table {
        id: TableId::Table4,
        machines: MachineSel::All,
        params: QueryParams {
            profile,
            seed,
            overrides: vec![],
        },
    };
    let quick = plan(&mk(Profile::Quick, None)).unwrap();
    let paper = plan(&mk(Profile::Paper, None)).unwrap();
    let seeded = plan(&mk(Profile::Quick, Some(7))).unwrap();
    for ((q, p), s) in quick.cells().iter().zip(paper.cells()).zip(seeded.cells()) {
        assert_ne!(q.key.canon, p.key.canon, "campaign config is in the key");
        assert_ne!(q.key.canon, s.key.canon, "master seed is in the key");
    }
    assert_ne!(quick.key, paper.key);
    assert_ne!(quick.key, seeded.key);
}
