//! The allocation-free hot-path contract.
//!
//! The substrate's arenas, pools, and dense tables exist so that a
//! steady-state repetition loop — schedule/pop events, send/recv messages,
//! enqueue copies — touches the allocator zero times once warm. This test
//! pins that down with a counting global allocator: warm each world up,
//! snapshot the allocation counter, run the steady-state loop, and assert
//! the counter did not move.
//!
//! Kept as a single `#[test]` in its own binary: the counter is
//! process-global, and a concurrently running test would perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocation events (alloc/realloc/alloc_zeroed); frees are not
/// interesting here — a hot path that only frees still shrinks arenas.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a
// side-channel with relaxed ordering and does not affect allocation.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events that happened while `f` ran.
fn alloc_delta(f: impl FnOnce()) -> u64 {
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    f();
    ALLOC_EVENTS.load(Ordering::Relaxed) - before
}

use std::sync::Arc;

use doebench::benchlib::set_jobs;
use doebench::gpurt::testkit::dual_gpu_runtime;
use doebench::gpurt::Buffer;
use doebench::mpi::{MpiConfig, MpiSim, ShardedStorm, Storm, StormConfig};
use doebench::net::{
    Fabric, FabricConfig, NetStorm, NetStormConfig, NetWorld, NicConfig, NodeId, ShardedNetStorm,
};
use doebench::simtime::{EventQueue, QueuePolicy, ShardPolicy, SimDuration, SimRng, SimTime};
use doebench::topo::{CoreId, DeviceId, LinkKind, NodeBuilder, NumaId, SocketId, Vertex};

fn two_numa_topo() -> Arc<doebench::topo::NodeTopology> {
    Arc::new(
        NodeBuilder::new("alloc-test")
            .socket("A")
            .socket("B")
            .numa(SocketId(0))
            .numa(SocketId(1))
            .cores(NumaId(0), 4, 1)
            .cores(NumaId(1), 4, 1)
            .devices("G", NumaId(0), 1)
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Numa(NumaId(1)),
                LinkKind::Upi,
                SimDuration::from_ns(200.0),
                40.0,
            )
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Device(DeviceId(0)),
                LinkKind::Pcie { gen: 4, lanes: 16 },
                SimDuration::from_ns(500.0),
                25.0,
            )
            .build()
            .expect("valid topology"),
    )
}

fn event_queue_phase() -> u64 {
    let mut q = EventQueue::with_capacity(64);
    // Warm to a depth of 32 in-flight events.
    for i in 0..32u64 {
        q.schedule(SimTime::from_ps(i * 100), i);
    }
    let mut t = 32u64;
    alloc_delta(|| {
        // Steady state: one pop, one schedule, 100k times.
        for _ in 0..100_000 {
            let ev = q.pop().expect("queue stays at depth 32");
            t += 1;
            q.schedule(SimTime::from_ps(t * 100), ev.payload);
        }
    })
}

fn mpisim_phase(checks: bool) -> u64 {
    let mut w = MpiSim::new(two_numa_topo(), MpiConfig::default_host(), 7);
    // One rank per NUMA domain so every message crosses the socket link
    // (dense ports + route cache + rank-pair path memo all in play).
    let a = w.add_host_rank(CoreId(0)).expect("core 0");
    let b = w.add_host_rank(CoreId(4)).expect("core 4");
    if checks {
        w.enable_checks();
    }
    // Warm-up: fill the path memo, route cache, message queue capacity,
    // and (under --check) the vector-clock snapshot pool.
    for _ in 0..8 {
        w.send(a, b, 8).expect("send");
        w.recv(b, a, 8).expect("recv");
        w.send(b, a, 8).expect("send");
        w.recv(a, b, 8).expect("recv");
    }
    let delta = alloc_delta(|| {
        // Steady state: an eager pingpong, 10k round trips.
        for _ in 0..10_000 {
            w.send(a, b, 8).expect("send");
            w.recv(b, a, 8).expect("recv");
            w.send(b, a, 8).expect("send");
            w.recv(a, b, 8).expect("recv");
        }
    });
    assert!(w.check_findings().is_empty(), "pingpong must be clean");
    delta
}

fn netsim_phase(checks: bool) -> u64 {
    let mut w = NetWorld::new(
        Fabric::new(FabricConfig::slingshot_like()),
        NicConfig::default_hpc(),
        11,
    );
    let a = w.add_rank(NodeId(0)).expect("node 0");
    let b = w.add_rank(NodeId(1)).expect("node 1");
    if checks {
        w.enable_checks();
    }
    for _ in 0..8 {
        w.send(a, b, 8).expect("send");
        w.recv(b, a, 8).expect("recv");
        w.send(b, a, 8).expect("send");
        w.recv(a, b, 8).expect("recv");
    }
    let delta = alloc_delta(|| {
        for _ in 0..10_000 {
            w.send(a, b, 8).expect("send");
            w.recv(b, a, 8).expect("recv");
            w.send(b, a, 8).expect("send");
            w.recv(a, b, 8).expect("recv");
        }
    });
    assert!(w.check_findings().is_empty(), "pingpong must be clean");
    delta
}

/// A 1000-rank storm (500 pairs, calendar scheduler): the O(ranks)
/// event-engine workload must hold the allocator still once the worlds,
/// mailboxes, batch buffer, and calendar arena are warm.
fn mpisim_storm_phase(checks: bool) -> u64 {
    let cfg = StormConfig {
        checks,
        ..StormConfig::with_ranks(1_000)
    };
    let mut storm = Storm::new(&cfg, QueuePolicy::Calendar, 21).expect("storm world");
    // Warm: ten full rounds, so every per-rank mailbox, copy port, the
    // batch scratch, and (under --check) the clock pools hit capacity.
    storm.run(5_000).expect("warm-up");
    let delta = alloc_delta(|| {
        storm.run(30_000).expect("steady state");
    });
    assert!(
        storm.world().check_findings().is_empty(),
        "storm must be clean"
    );
    delta
}

/// The fabric flavor: zero stagger keeps pairs in lock-step, so the
/// steady state drains wide same-timestamp batches through `pop_batch`.
fn netsim_storm_phase() -> u64 {
    let cfg = NetStormConfig::with_ranks(1_000);
    let mut storm = NetStorm::new(&cfg, QueuePolicy::Calendar, 23).expect("fabric storm");
    storm.run(5_000).expect("warm-up");
    alloc_delta(|| {
        storm.run(30_000).expect("steady state");
    })
}

/// The sharded conservative-window driver on the same 1000-rank storm:
/// four lanes, run with `--jobs 1` so the executor takes its serial path
/// (a plain loop — the forking path's scope bookkeeping would count
/// scheduler allocations, not engine ones). Pins that the engine's window
/// loop is allocation-free per worker once warm: lane batch buffers,
/// outboxes, and the barrier-merge scratch are pooled, and the window
/// error slot lives on the stack.
fn mpisim_sharded_storm_phase(checks: bool) -> u64 {
    set_jobs(1);
    let cfg = StormConfig {
        checks,
        ..StormConfig::with_ranks(1_000)
    };
    // Horizons from a serial probe: warm to ~10 rounds, steady ~60 more.
    let (h_warm, h_end) = {
        let mut probe = Storm::new(&cfg, QueuePolicy::Calendar, 21).expect("probe");
        probe.run(5_000).expect("probe warm");
        let w = probe.report().final_time;
        probe.run(35_000).expect("probe run");
        (w, probe.report().final_time)
    };
    let mut storm = ShardedStorm::new(&cfg, ShardPolicy::Sharded(4), QueuePolicy::Calendar, 21)
        .expect("sharded storm");
    storm.run_until(h_warm).expect("warm-up");
    let delta = alloc_delta(|| {
        storm.run_until(h_end).expect("steady state");
    });
    assert!(storm.check_findings().is_empty(), "storm must be clean");
    delta
}

/// Sharded twin of [`netsim_storm_phase`].
fn netsim_sharded_storm_phase() -> u64 {
    set_jobs(1);
    let cfg = NetStormConfig::with_ranks(1_000);
    let (h_warm, h_end) = {
        let mut probe = NetStorm::new(&cfg, QueuePolicy::Calendar, 23).expect("probe");
        probe.run(5_000).expect("probe warm");
        let w = probe.report().final_time;
        probe.run(35_000).expect("probe run");
        (w, probe.report().final_time)
    };
    let mut storm = ShardedNetStorm::new(&cfg, ShardPolicy::Sharded(4), QueuePolicy::Calendar, 23)
        .expect("sharded fabric storm");
    storm.run_until(h_warm).expect("warm-up");
    alloc_delta(|| {
        storm.run_until(h_end).expect("steady state");
    })
}

fn gpurt_phase() -> u64 {
    let mut rt = dual_gpu_runtime();
    let s = rt.create_stream(DeviceId(0)).expect("stream");
    let host = Buffer::pinned_host(NumaId(0), 1 << 20);
    let dev = Buffer::device(DeviceId(0), 1 << 20);
    let peer = Buffer::device(DeviceId(1), 1 << 20);
    // Warm-up: route cache, wire engines, stream state.
    for _ in 0..8 {
        rt.memcpy_async(&dev, &host, 4096, &s).expect("h2d");
        rt.memcpy_async(&peer, &dev, 4096, &s).expect("d2d");
        rt.memcpy_async(&host, &peer, 4096, &s).expect("d2h");
        rt.stream_synchronize(&s).expect("sync");
    }
    alloc_delta(|| {
        // Steady state: the commscope memcpy inner loop shape.
        for _ in 0..10_000 {
            rt.memcpy_async(&dev, &host, 4096, &s).expect("h2d");
            rt.memcpy_async(&peer, &dev, 4096, &s).expect("d2d");
            rt.memcpy_async(&host, &peer, 4096, &s).expect("d2h");
            rt.stream_synchronize(&s).expect("sync");
        }
    })
}

fn noise_phase() -> u64 {
    let mut rng = SimRng::from_seed(3);
    let mut buf = vec![0.0f64; 256];
    // Warm: nothing to warm — the buffer is caller-owned.
    alloc_delta(|| {
        for _ in 0..1_000 {
            rng.fill_gaussian(&mut buf);
        }
    })
}

#[test]
fn steady_state_hot_paths_allocate_nothing() {
    // (phase name, allocation events during steady state)
    let phases = [
        ("event queue schedule/pop", event_queue_phase()),
        ("mpisim pingpong", mpisim_phase(false)),
        ("mpisim pingpong under --check", mpisim_phase(true)),
        ("netsim pingpong", netsim_phase(false)),
        ("netsim pingpong under --check", netsim_phase(true)),
        ("mpisim 1k-rank storm", mpisim_storm_phase(false)),
        (
            "mpisim 1k-rank storm under --check",
            mpisim_storm_phase(true),
        ),
        ("netsim 1k-rank lock-step storm", netsim_storm_phase()),
        (
            "mpisim 1k-rank sharded storm",
            mpisim_sharded_storm_phase(false),
        ),
        (
            "mpisim 1k-rank sharded storm under --check",
            mpisim_sharded_storm_phase(true),
        ),
        (
            "netsim 1k-rank sharded lock-step storm",
            netsim_sharded_storm_phase(),
        ),
        ("gpurt memcpy loop", gpurt_phase()),
        ("batch gaussian fill", noise_phase()),
    ];
    let dirty: Vec<String> = phases
        .iter()
        .filter(|(_, d)| *d > 0)
        .map(|(name, d)| format!("{name}: {d} allocation(s)"))
        .collect();
    assert!(
        dirty.is_empty(),
        "steady-state hot paths must not allocate:\n{}",
        dirty.join("\n")
    );
}
