//! Shard-count A/B: the sharded conservative-window DES driver must be
//! *observationally invisible*. Whatever `DOEBENCH_SHARDS` selects, the
//! engine executes the same `(time, seq)` total order — per-shard queues
//! drain lock-step lookahead windows and merge canonically at the
//! barriers — so every downstream consumer (campaign tables, storm clock
//! digests, sanitizer findings) must be byte-identical to serial, and the
//! invariance must compose with the queue-core switch (`DOEBENCH_QUEUE`)
//! and with `--check` on or off.
//!
//! Kept in one `#[test]` because the default shard and queue policies are
//! process-global (`set_default_shard_policy` / `set_default_queue_policy`,
//! the switches the env vars flip for a whole process).

use doebench::benchlib::set_jobs;
use doebench::mpi::{ShardedStorm, Storm, StormConfig, StormReport};
use doebench::net::{NetStorm, NetStormConfig, NetStormReport, ShardedNetStorm};
use doebench::simtime::{
    default_shard_policy, set_default_queue_policy, set_default_shard_policy, QueuePolicy,
    ShardPolicy, SimTime,
};
use doebench::{table4, table5, table6, table7, Campaign};

/// Every rendered table of the quick campaign, concatenated.
fn campaign_output() -> String {
    let c = Campaign::quick();
    let t4 = table4::run(&c);
    let t5 = table5::run(&c);
    let t6 = table6::run(&c);
    let t7 = table7::summarize(&t5, &t6);
    format!(
        "{}\n{}\n{}\n{}\n",
        table4::render(&t4).to_ascii(),
        table5::render(&t5).to_ascii(),
        table6::render(&t6).to_ascii(),
        table7::render(&t7).to_ascii(),
    )
}

/// Sharded mpisim storm run to `horizon` under the *process-default*
/// shard policy (the switch `DOEBENCH_SHARDS` flips): report + findings.
fn mpi_storm(
    cfg: &StormConfig,
    queue: QueuePolicy,
    horizon: SimTime,
) -> (StormReport, Vec<String>) {
    let mut storm =
        ShardedStorm::new(cfg, default_shard_policy(), queue, 41).expect("mpi storm world");
    storm.run_until(horizon).expect("mpi storm run");
    (storm.report(), storm.check_findings())
}

/// Sharded fabric storm twin of [`mpi_storm`].
fn net_storm(
    cfg: &NetStormConfig,
    queue: QueuePolicy,
    horizon: SimTime,
) -> (NetStormReport, Vec<String>) {
    let mut storm =
        ShardedNetStorm::new(cfg, default_shard_policy(), queue, 41).expect("fabric storm world");
    storm.run_until(horizon).expect("fabric storm run");
    (storm.report(), storm.check_findings())
}

#[test]
fn campaign_and_storms_are_byte_identical_across_shard_counts() {
    set_jobs(1);

    // --- Serial oracles: the unsharded drivers, run to a probe-derived
    // virtual-time horizon (horizons select shard-count-invariant event
    // sets; event-count stops do not).
    let mpi_cfg = StormConfig::with_ranks(1_000);
    let net_cfg = NetStormConfig::with_ranks(1_000);
    let mpi_horizon = {
        let mut probe = Storm::new(&mpi_cfg, QueuePolicy::Heap, 41).expect("mpi probe");
        probe.run(4_000).expect("mpi probe run");
        probe.report().final_time
    };
    let net_horizon = {
        let mut probe = NetStorm::new(&net_cfg, QueuePolicy::Heap, 41).expect("net probe");
        probe.run(4_000).expect("net probe run");
        probe.report().final_time
    };
    let mpi_oracle = {
        let mut s = Storm::new(&mpi_cfg, QueuePolicy::Heap, 41).expect("mpi oracle");
        s.run_until(mpi_horizon).expect("mpi oracle run");
        s.report()
    };
    let net_oracle = {
        let mut s = NetStorm::new(&net_cfg, QueuePolicy::Heap, 41).expect("net oracle");
        s.run_until(net_horizon).expect("net oracle run");
        s.report()
    };
    assert!(mpi_oracle.events > 0 && net_oracle.events > 0);

    // --- Storm digests across shards × queue core × sanitizer. Every
    // combination must reproduce the serial oracle's fingerprint exactly.
    let shard_policies = [
        ShardPolicy::Serial,
        ShardPolicy::Sharded(2),
        ShardPolicy::Sharded(8),
    ];
    for shards in shard_policies {
        set_default_shard_policy(shards);
        for queue in [QueuePolicy::Heap, QueuePolicy::Calendar] {
            for checks in [false, true] {
                let label = format!("shards={shards:?} queue={queue:?} checks={checks}");
                let m_cfg = StormConfig {
                    checks,
                    ..mpi_cfg.clone()
                };
                let n_cfg = NetStormConfig {
                    checks,
                    ..net_cfg.clone()
                };
                let (m, m_findings) = mpi_storm(&m_cfg, queue, mpi_horizon);
                let (n, n_findings) = net_storm(&n_cfg, queue, net_horizon);
                assert_eq!(m.events, mpi_oracle.events, "{label}");
                assert_eq!(m.final_time, mpi_oracle.final_time, "{label}");
                assert_eq!(m.clock_digest, mpi_oracle.clock_digest, "{label}");
                assert_eq!(n.events, net_oracle.events, "{label}");
                assert_eq!(n.final_time, net_oracle.final_time, "{label}");
                assert_eq!(n.clock_digest, net_oracle.clock_digest, "{label}");
                // Findings identical across every axis — and empty, the
                // storms are race-free by construction.
                assert_eq!(m_findings, Vec::<String>::new(), "{label}");
                assert_eq!(n_findings, Vec::<String>::new(), "{label}");
                // The counters report, but never fingerprint: windows ran
                // whenever events did.
                assert!(m.shards.windows > 0, "{label}");
                assert!(n.shards.windows > 0, "{label}");
            }
        }
    }

    // --- Campaign tables across the process-default switch (what CI's
    // DOEBENCH_SHARDS binary-diff job exercises end to end), composed
    // with the queue-core default.
    set_default_shard_policy(ShardPolicy::Serial);
    set_default_queue_policy(QueuePolicy::Heap);
    let tables_serial = campaign_output();
    set_default_shard_policy(ShardPolicy::Sharded(2));
    set_default_queue_policy(QueuePolicy::Calendar);
    let tables_two = campaign_output();
    set_default_shard_policy(ShardPolicy::Sharded(8));
    set_default_queue_policy(QueuePolicy::Heap);
    let tables_eight = campaign_output();
    set_default_shard_policy(ShardPolicy::Auto);
    set_default_queue_policy(QueuePolicy::Auto);

    for needle in ["Table 4", "Table 5", "Table 6", "Table 7"] {
        assert!(tables_serial.contains(needle), "missing {needle}");
    }
    assert!(
        tables_serial == tables_two && tables_serial == tables_eight,
        "campaign tables diverged across shard defaults"
    );
}
