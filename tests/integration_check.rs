//! The sanitizer's core contract: `--check` is an observer. Enabling it
//! must not perturb a single byte of rendered output, and a full quick
//! campaign across all machines must produce zero findings.
//!
//! Kept in one `#[test]` because the checks flag is process-global.

use doebench::{dessan, table4, table5, table6, table7, Campaign};

/// Every rendered table for the quick campaign, concatenated.
fn campaign_output() -> String {
    let c = Campaign::quick();
    let t4 = table4::run(&c);
    let t5 = table5::run(&c);
    let t6 = table6::run(&c);
    let t7 = table7::summarize(&t5, &t6);
    format!(
        "{}\n{}\n{}\n{}\n",
        table4::render(&t4).to_ascii(),
        table5::render(&t5).to_ascii(),
        table6::render(&t6).to_ascii(),
        table7::render(&t7).to_ascii(),
    )
}

#[test]
fn checked_campaign_is_clean_and_byte_identical() {
    let plain = campaign_output();

    dessan::set_checks_enabled(true);
    dessan::take_global_findings(); // discard anything older tests left
    let checked = campaign_output();
    let findings = dessan::take_global_findings();
    dessan::set_checks_enabled(false);

    assert!(
        findings.is_empty(),
        "quick campaign must run clean under --check, got:\n{}",
        findings.join("\n")
    );
    for needle in ["Table 4", "Table 5", "Table 6", "Table 7"] {
        assert!(plain.contains(needle), "missing {needle} in output");
    }
    assert!(
        plain == checked,
        "--check perturbed rendered output:\n--- plain ---\n{plain}\n--- checked ---\n{checked}"
    );
}
