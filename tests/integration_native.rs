//! The native backend really measures this host: real arrays, real
//! threads, real timers.

use doebench::babelstream::{run_native, NativeStreamConfig};

#[test]
fn native_stream_runs_and_verifies_on_this_host() {
    let rep = run_native(&NativeStreamConfig {
        elems: 256 * 1024,
        iters: 5,
        nthreads: Some(2),
    });
    assert!(rep.verified, "kernel results diverged");
    let (op, bw) = rep.best_overall();
    // Any machine this runs on moves more than 0.5 GB/s and less than
    // 10 TB/s through memory.
    assert!(bw > 0.5 && bw < 10_000.0, "best {op}: {bw} GB/s");
}

#[test]
fn native_multithreading_does_not_break_verification() {
    for threads in [1usize, 2, 4] {
        let rep = run_native(&NativeStreamConfig {
            elems: 100_003, // odd size: exercises remainder chunks
            iters: 3,
            nthreads: Some(threads),
        });
        assert!(rep.verified, "{threads} threads");
        assert_eq!(rep.nthreads, threads);
    }
}

#[test]
fn native_reports_all_five_kernels() {
    let rep = run_native(&NativeStreamConfig::quick());
    let names: Vec<&str> = rep.per_op.iter().map(|(op, _)| op.name()).collect();
    assert_eq!(names, vec!["Copy", "Mul", "Add", "Triad", "Dot"]);
    for (op, s) in &rep.per_op {
        assert!(s.n >= 5, "{op}: n={}", s.n);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }
}

#[test]
fn native_bandwidth_scales_sanely_with_size() {
    // Not a performance assertion (CI noise), just that both sizes work
    // and produce plausible numbers.
    for elems in [64 * 1024usize, 1024 * 1024] {
        let rep = run_native(&NativeStreamConfig {
            elems,
            iters: 3,
            nthreads: Some(2),
        });
        assert!(rep.verified);
        assert!(rep.best_overall().1 > 0.1);
    }
}
