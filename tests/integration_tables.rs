//! End-to-end regeneration of every table, asserting the paper's headline
//! *shapes*: who wins, by roughly what factor, and where the classes
//! separate. Absolute calibration is covered by `integration_calibration`.

use doebench::topo::LinkClass;
use doebench::{experiments, table7, Campaign};

fn results() -> &'static experiments::Results {
    static RESULTS: std::sync::OnceLock<experiments::Results> = std::sync::OnceLock::new();
    RESULTS.get_or_init(|| experiments::run_all(&Campaign::quick()))
}

#[test]
fn table4_xeon_class_machines_cluster_as_in_the_paper() {
    let r = results();
    // "The three traditional Xeon CPU systems … all have somewhat similar
    // memory bandwidth for both a single core (13-16 GB/s) and all cores
    // (200-250 GB/s)".
    for name in ["Sawtooth", "Eagle", "Manzano"] {
        let row = r
            .table4
            .iter()
            .find(|x| x.machine == name)
            .expect("xeon row");
        assert!(
            row.single.mean > 12.0 && row.single.mean < 17.0,
            "{name}: single={}",
            row.single.mean
        );
        assert!(
            row.all.mean > 190.0 && row.all.mean < 260.0,
            "{name}: all={}",
            row.all.mean
        );
        // "sub-microsecond MPI latencies both on-socket and on-node".
        assert!(row.on_socket.mean < 1.0);
        assert!(row.on_node.mean < 1.0);
    }
}

#[test]
fn table4_theta_underperforms_trinity_substantially() {
    let r = results();
    let trinity = r.table4.iter().find(|x| x.machine == "Trinity").unwrap();
    let theta = r.table4.iter().find(|x| x.machine == "Theta").unwrap();
    // The all-core anomaly: Theta under half of Trinity.
    assert!(theta.all.mean * 2.0 < trinity.all.mean);
    // And the MPI disparity: ~6x.
    assert!(theta.on_socket.mean > 4.0 * trinity.on_socket.mean);
}

#[test]
fn table4_on_node_is_never_faster_than_on_socket() {
    for row in &results().table4 {
        assert!(
            row.on_node.mean >= row.on_socket.mean * 0.98,
            "{}: node {} < socket {}",
            row.machine,
            row.on_node.mean,
            row.on_socket.mean
        );
    }
}

#[test]
fn table5_memory_bandwidth_generations_separate() {
    let r = results();
    let bw = |name: &str| {
        r.table5
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .device_bw
            .mean
    };
    // V100 machines substantially below A100 and MI250X machines.
    for v100 in ["Summit", "Sierra", "Lassen"] {
        for fast in ["Perlmutter", "Polaris", "Frontier", "Tioga"] {
            assert!(
                bw(v100) * 1.4 < bw(fast),
                "{v100} ({}) should be well below {fast} ({})",
                bw(v100),
                bw(fast)
            );
        }
    }
    // "The latter two categories report fairly similar achieved memory
    // bandwidth (about 1.3 TB/s)".
    for fast in ["Perlmutter", "Polaris", "Frontier", "RZVernal", "Tioga"] {
        assert!(
            bw(fast) > 1200.0 && bw(fast) < 1450.0,
            "{fast}: {}",
            bw(fast)
        );
    }
}

#[test]
fn table5_host_mpi_is_submicrosecond_everywhere() {
    for row in &results().table5 {
        assert!(
            row.host_to_host.mean < 1.0,
            "{}: h2h={}",
            row.machine,
            row.host_to_host.mean
        );
    }
}

#[test]
fn table5_device_mpi_hierarchy() {
    let r = results();
    let class_a = |name: &str| {
        r.table5
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .d2d
            .get(&LinkClass::A)
            .expect("class A")
            .mean
    };
    // V100: ~18-19 us; A100: 10-14 us; MI250X: sub-microsecond.
    for m in ["Summit", "Sierra", "Lassen"] {
        assert!(
            class_a(m) > 15.0 && class_a(m) < 22.0,
            "{m}: {}",
            class_a(m)
        );
    }
    for m in ["Perlmutter", "Polaris"] {
        assert!(class_a(m) > 9.0 && class_a(m) < 16.0, "{m}: {}", class_a(m));
    }
    for m in ["Frontier", "RZVernal", "Tioga"] {
        assert!(class_a(m) < 1.0, "{m}: {}", class_a(m));
    }
}

#[test]
fn table5_mi250x_devices_are_roughly_equidistant() {
    let r = results();
    for name in ["Frontier", "RZVernal", "Tioga"] {
        let row = r.table5.iter().find(|x| x.machine == name).unwrap();
        let means: Vec<f64> = row.d2d.values().map(|s| s.mean).collect();
        assert_eq!(means.len(), 4, "{name}");
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min < 0.3, "{name}: classes spread too far: {means:?}");
    }
}

#[test]
fn table5_nvlink_class_b_is_about_a_microsecond_slower() {
    let r = results();
    for name in ["Summit", "Sierra", "Lassen"] {
        let row = r.table5.iter().find(|x| x.machine == name).unwrap();
        let a = row.d2d.get(&LinkClass::A).unwrap().mean;
        let b = row.d2d.get(&LinkClass::B).unwrap().mean;
        let gap = b - a;
        assert!(
            gap > 0.5 && gap < 3.0,
            "{name}: B-A gap {gap} out of the paper's ~1-2 us band"
        );
    }
}

#[test]
fn table6_kernel_launch_hierarchy() {
    let r = results();
    let launch = |name: &str| {
        r.table6
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .launch_us
            .mean
    };
    // "4-5 us for the V100 machines and 1.5-2.15 us for the A100 and
    // MI250X machines".
    for m in ["Summit", "Sierra", "Lassen"] {
        assert!(launch(m) > 3.8 && launch(m) < 5.3, "{m}: {}", launch(m));
    }
    for m in ["Perlmutter", "Polaris", "Frontier", "RZVernal", "Tioga"] {
        assert!(launch(m) > 1.2 && launch(m) < 2.5, "{m}: {}", launch(m));
    }
}

#[test]
fn table6_wait_hierarchy() {
    let r = results();
    let wait = |name: &str| {
        r.table6
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .wait_us
            .mean
    };
    // 5-6 us V100; ~1 us A100; 0.1-0.2 us MI250X.
    for m in ["Summit", "Sierra", "Lassen"] {
        assert!(wait(m) > 3.5, "{m}: {}", wait(m));
    }
    for m in ["Perlmutter", "Polaris"] {
        assert!(wait(m) > 0.7 && wait(m) < 1.7, "{m}: {}", wait(m));
    }
    for m in ["Frontier", "RZVernal", "Tioga"] {
        assert!(wait(m) < 0.25, "{m}: {}", wait(m));
    }
}

#[test]
fn table6_hd_trend_inverts_the_launch_trend() {
    let r = results();
    let hd = |name: &str| {
        r.table6
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .hd_latency_us
            .mean
    };
    // "MI250X machines measured at 12-13 us, the V100 machines next at
    // 7-8 us, and the A100 machines fastest at 4-6 us."
    for m in ["Frontier", "RZVernal", "Tioga"] {
        assert!(hd(m) > 11.0 && hd(m) < 14.0, "{m}: {}", hd(m));
    }
    for m in ["Summit", "Sierra", "Lassen"] {
        assert!(hd(m) > 6.5 && hd(m) < 9.0, "{m}: {}", hd(m));
    }
    for m in ["Perlmutter", "Polaris"] {
        assert!(hd(m) > 3.5 && hd(m) < 6.0, "{m}: {}", hd(m));
    }
}

#[test]
fn table6_v100_host_bandwidth_wins_via_nvlink() {
    let r = results();
    let bw = |name: &str| {
        r.table6
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .hd_bandwidth_gb_s
            .mean
    };
    // "the V100 machines perform best, reaching 40-60 GB/s … while all
    // other machines reach roughly 25 GB/s over PCIe".
    for m in ["Summit", "Sierra", "Lassen"] {
        assert!(bw(m) > 40.0, "{m}: {}", bw(m));
    }
    for m in ["Perlmutter", "Polaris", "Frontier", "RZVernal", "Tioga"] {
        assert!(bw(m) > 20.0 && bw(m) < 27.0, "{m}: {}", bw(m));
    }
}

#[test]
fn table6_perlmutter_polaris_d2d_gap() {
    let r = results();
    let d2d_a = |name: &str| {
        r.table6
            .iter()
            .find(|x| x.machine == name)
            .expect("row")
            .d2d_latency_us
            .get(&LinkClass::A)
            .expect("class A")
            .mean
    };
    // "a substantial difference (14 us vs. 32 us)" on identical hardware.
    assert!(d2d_a("Polaris") > 2.0 * d2d_a("Perlmutter"));
}

#[test]
fn table6_commscope_d2d_exceeds_osu_d2d_on_mi250x() {
    // "Inter-device latency in Comm|Scope is substantially slower than the
    // inter-device latency shown by the OSU microbenchmarks" (memcpyAsync
    // vs. RMA).
    let r = results();
    for name in ["Frontier", "RZVernal", "Tioga"] {
        let osu = r.table5.iter().find(|x| x.machine == name).unwrap();
        let cs = r.table6.iter().find(|x| x.machine == name).unwrap();
        let osu_a = osu.d2d.get(&LinkClass::A).unwrap().mean;
        let cs_a = cs.d2d_latency_us.get(&LinkClass::A).unwrap().mean;
        assert!(cs_a > 10.0 * osu_a, "{name}: {cs_a} vs {osu_a}");
    }
}

#[test]
fn table7_summary_ranges_are_consistent() {
    let r = results();
    let rows = table7::summarize(&r.table5, &r.table6);
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(row.memory_bw.min <= row.memory_bw.max);
        assert!(row.mpi_latency.min <= row.mpi_latency.max);
        assert!(row.d2d_latency.min <= row.d2d_latency.max);
    }
    // MI250X has the lowest device-MPI range; V100 the highest.
    let get = |acc: table7::Accelerator| {
        rows.iter()
            .find(|r| r.accelerator == acc)
            .expect("generation present")
    };
    assert!(
        get(table7::Accelerator::Mi250x).mpi_latency.max
            < get(table7::Accelerator::A100).mpi_latency.min
    );
    assert!(
        get(table7::Accelerator::A100).mpi_latency.min
            <= get(table7::Accelerator::V100).mpi_latency.max
    );
}
