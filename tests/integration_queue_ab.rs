//! Queue-core A/B: the calendar scheduler must be *observationally
//! invisible*. Both cores pop the exact global minimum of `(time, seq)`
//! and recycle arena slots in the same order, so every downstream
//! consumer — the campaign tables, the storm worlds, the sanitizer —
//! must produce byte-identical output whichever core is active.
//!
//! Kept in one `#[test]` because the default queue policy is
//! process-global (`set_default_queue_policy`, same switch the
//! `DOEBENCH_QUEUE` env var flips for a whole process).

use doebench::benchlib::set_jobs;
use doebench::mpi::{Storm, StormConfig, StormReport};
use doebench::net::{NetStorm, NetStormConfig, NetStormReport};
use doebench::simtime::{set_default_queue_policy, QueuePolicy};
use doebench::{table4, table5, table6, table7, Campaign};

/// Every rendered table of the quick campaign, concatenated.
fn campaign_output() -> String {
    let c = Campaign::quick();
    let t4 = table4::run(&c);
    let t5 = table5::run(&c);
    let t6 = table6::run(&c);
    let t7 = table7::summarize(&t5, &t6);
    format!(
        "{}\n{}\n{}\n{}\n",
        table4::render(&t4).to_ascii(),
        table5::render(&t5).to_ascii(),
        table6::render(&t6).to_ascii(),
        table7::render(&t7).to_ascii(),
    )
}

/// Checked mpisim storm under one policy: report + sanitizer findings.
fn mpi_storm(policy: QueuePolicy) -> (StormReport, Vec<String>) {
    let cfg = StormConfig {
        checks: true,
        ..StormConfig::with_ranks(1_000)
    };
    let mut storm = Storm::new(&cfg, policy, 41).expect("mpi storm world");
    storm.run(4_000).expect("mpi storm run");
    (storm.report(), storm.world().check_findings())
}

/// Checked fabric storm under one policy: report + sanitizer findings.
fn net_storm(policy: QueuePolicy) -> (NetStormReport, Vec<String>) {
    let cfg = NetStormConfig {
        checks: true,
        ..NetStormConfig::with_ranks(1_000)
    };
    let mut storm = NetStorm::new(&cfg, policy, 41).expect("fabric storm world");
    storm.run(4_000).expect("fabric storm run");
    (storm.report(), storm.world().check_findings())
}

#[test]
fn campaign_and_storms_are_byte_identical_across_queue_cores() {
    set_jobs(1);

    // The storms pass an explicit policy; the campaign inherits the
    // process default, which is what CI's DOEBENCH_QUEUE job exercises
    // end to end over the doebench binary.
    set_default_queue_policy(QueuePolicy::Heap);
    let tables_heap = campaign_output();
    let (mpi_heap, mpi_heap_findings) = mpi_storm(QueuePolicy::Heap);
    let (net_heap, net_heap_findings) = net_storm(QueuePolicy::Heap);

    set_default_queue_policy(QueuePolicy::Calendar);
    let tables_cal = campaign_output();
    let (mpi_cal, mpi_cal_findings) = mpi_storm(QueuePolicy::Calendar);
    let (net_cal, net_cal_findings) = net_storm(QueuePolicy::Calendar);

    set_default_queue_policy(QueuePolicy::Auto);

    // Sanitizer findings must match between cores (and be empty — the
    // storms are race-free by construction).
    assert_eq!(mpi_heap_findings, mpi_cal_findings);
    assert_eq!(net_heap_findings, net_cal_findings);
    assert_eq!(mpi_heap_findings, Vec::<String>::new());
    assert_eq!(net_heap_findings, Vec::<String>::new());

    for needle in ["Table 4", "Table 5", "Table 6", "Table 7"] {
        assert!(tables_heap.contains(needle), "missing {needle} in output");
    }
    assert!(
        tables_heap == tables_cal,
        "campaign tables diverged between queue cores:\n--- heap ---\n{tables_heap}\n--- calendar ---\n{tables_cal}"
    );

    // Storm fingerprints: every rank clock, the final time, and the event
    // count must agree; only the core-in-use diagnostic may differ.
    assert!(mpi_cal.used_calendar && !mpi_heap.used_calendar);
    assert_eq!(mpi_heap.events, mpi_cal.events);
    assert_eq!(mpi_heap.final_time, mpi_cal.final_time);
    assert_eq!(mpi_heap.clock_digest, mpi_cal.clock_digest);
    assert!(net_cal.used_calendar && !net_heap.used_calendar);
    assert_eq!(net_heap.events, net_cal.events);
    assert_eq!(net_heap.final_time, net_cal.final_time);
    assert_eq!(net_heap.clock_digest, net_cal.clock_digest);
    assert_eq!(net_heap.max_batch, net_cal.max_batch);
}
