//! The full survey: regenerate Tables 4-7 for all 13 DOE machines and
//! print paper-vs-measured comparisons.
//!
//! ```text
//! cargo run --release --example machine_survey            # quick protocol
//! cargo run --release --example machine_survey -- --full  # 100 reps, paper protocol
//! ```

use doebench::{experiments, table4, table5, table6, table7, Campaign};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let campaign = if full {
        Campaign::paper()
    } else {
        Campaign::quick()
    };
    eprintln!(
        "running the {} protocol over 13 machines...",
        if full { "paper (100-rep)" } else { "quick" }
    );

    let results = experiments::run_all(&campaign);

    println!("{}", table4::render(&results.table4).to_ascii());
    println!("{}", table4::render_comparison(&results.table4).to_ascii());
    println!("{}", table5::render(&results.table5).to_ascii());
    println!("{}", table5::render_comparison(&results.table5).to_ascii());
    println!("{}", table6::render(&results.table6).to_ascii());
    println!("{}", table6::render_comparison(&results.table6).to_ascii());
    println!("{}", table7::render(&results.table7).to_ascii());
}
