//! The message-size sweeps behind the headline numbers: OSU latency and
//! bandwidth curves on a chosen machine, including the eager/rendezvous
//! knee (Appendix B.2 campaign).
//!
//! ```text
//! cargo run --release --example latency_sweep            # Frontier
//! cargo run --release --example latency_sweep -- Summit
//! ```

use doebench::osu::{on_node_pair, on_socket_pair, osu_bw, osu_latency, OsuConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Frontier".into());
    let m = doebench::machines::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown machine {name}; try one of:");
        for m in doebench::machines::all_machines() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(1);
    });

    let mut cfg = OsuConfig::paper();
    cfg.reps = 10; // keep the example snappy; tables use 100
    cfg.small_iters = 200;
    cfg.large_iters = 20;

    let socket = on_socket_pair(&m.topo).expect("pair");
    let node = on_node_pair(&m.topo).expect("pair");
    let lat_socket = osu_latency(&m.topo, &m.mpi, socket, &cfg, 1);
    let lat_node = osu_latency(&m.topo, &m.mpi, node, &cfg, 2);
    let bw = osu_bw(&m.topo, &m.mpi, socket, &cfg, 3);

    println!(
        "# OSU point-to-point sweep on {} (rank {})",
        m.name, m.top500_rank
    );
    println!("# eager threshold: {} B", m.mpi.eager_threshold);
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "bytes", "on-socket(us)", "on-node(us)", "bw(GB/s)"
    );
    for (i, pt) in lat_socket.iter().enumerate() {
        let node_us = lat_node[i].one_way_us.mean;
        let bw_cell = bw
            .iter()
            .find(|b| b.bytes == pt.bytes)
            .map(|b| format!("{:>12.3}", b.gb_s.mean))
            .unwrap_or_else(|| format!("{:>12}", "-"));
        println!(
            "{:>10} {:>14.3} {:>14.3} {}",
            pt.bytes, pt.one_way_us.mean, node_us, bw_cell
        );
    }
    println!(
        "\n(watch the latency step just past {} B: rendezvous)",
        m.mpi.eager_threshold
    );

    // Multi-pair loading: the paper's one-rank-per-core convention.
    let pair_counts = [1usize, 2, 4];
    if let Some(pts) =
        doebench::osu::osu_multi_lat(&m.topo, &m.mpi, &pair_counts, 64 * 1024, &cfg, 5)
    {
        println!("\n# osu_multi_lat, 64 KiB messages (shared copy-port contention)");
        for p in pts {
            println!("  {:>2} pairs: {:>8.3} us/msg", p.pairs, p.one_way_us.mean);
        }
    }
    if let Some(pts) = doebench::osu::osu_mbw_mr(&m.topo, &m.mpi, &pair_counts, 64 * 1024, &cfg, 6)
    {
        println!("\n# osu_mbw_mr, 64 KiB messages");
        for p in pts {
            println!(
                "  {:>2} pairs: {:>7.2} GB/s aggregate, {:>6.2} M msg/s",
                p.pairs, p.aggregate_gb_s.mean, p.msg_rate_m_per_s.mean
            );
        }
    }
}
