//! Model a machine that is *not* in the paper and benchmark it — the
//! "what would the tables look like on my cluster?" workflow.
//!
//! Here: a hypothetical single-socket node with two H100-class GPUs on
//! PCIe gen5 and NVLink4 between them.
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```

use std::sync::Arc;

use doebench::commscope::{run_commscope, CommScopeConfig};
use doebench::gpusim::GpuModel;
use doebench::memmodel::{MemDomainModel, StreamOp};
use doebench::osu::{on_socket_pair, osu_latency, OsuConfig};
use doebench::simtime::{Jitter, SimDuration};
use doebench::topo::{DeviceId, LinkKind, NodeBuilder, NumaId, SocketId, Vertex};

fn us(x: f64) -> SimDuration {
    SimDuration::from_us(x)
}

fn main() {
    // -- Topology: 1 socket, 32 cores SMT2, 2 GPUs ----------------------
    let topo = Arc::new(
        NodeBuilder::new("hypothetical-h100-node")
            .socket("Generic 32c CPU")
            .numa(SocketId(0))
            .cores(NumaId(0), 32, 2)
            .devices("H100-class GPU", NumaId(0), 2)
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Device(DeviceId(0)),
                LinkKind::Pcie { gen: 5, lanes: 16 },
                us(0.45),
                50.0,
            )
            .link(
                Vertex::Numa(NumaId(0)),
                Vertex::Device(DeviceId(1)),
                LinkKind::Pcie { gen: 5, lanes: 16 },
                us(0.45),
                50.0,
            )
            .link(
                Vertex::Device(DeviceId(0)),
                Vertex::Device(DeviceId(1)),
                LinkKind::NvLink { gen: 4, bricks: 6 },
                us(0.5),
                300.0,
            )
            .build()
            .expect("valid custom topology"),
    );
    println!("{}", topo.render_ascii());

    // -- Device model: HBM3-class ---------------------------------------
    let mut hbm = MemDomainModel::new("HBM3 80GB", 3350.0, 60.0);
    hbm.sustained_efficiency = 0.88;
    let mut gpu = GpuModel::new("H100-class GPU", hbm);
    gpu.launch_overhead = us(1.3);
    gpu.sync_overhead = us(0.8);
    gpu.stream_sync_overhead = us(0.8);
    gpu.copy_setup_host = us(1.2);
    gpu.copy_setup_peer = us(6.0);
    gpu.jitter = Jitter::relative(0.005);
    let models = vec![gpu; 2];

    // -- BabelStream-style device bandwidth ------------------------------
    println!("== device kernels ==");
    for op in StreamOp::ALL {
        println!("  {op:<6} {:>8.1} GB/s (model)", models[0].stream_bw(op));
    }

    // -- Comm|Scope -------------------------------------------------------
    let cs = run_commscope(&topo, &models, &CommScopeConfig::quick(), 7);
    println!("\n== Comm|Scope ==");
    println!("  launch      : {:>7.2} us", cs.launch_us.mean);
    println!("  wait        : {:>7.2} us", cs.wait_us.mean);
    println!("  H2D/D2H lat : {:>7.2} us", cs.hd_latency_us.mean);
    println!("  H2D/D2H bw  : {:>7.2} GB/s", cs.hd_bandwidth_gb_s.mean);
    for (class, s) in &cs.d2d_latency_us {
        println!("  D2D class {class}: {:>7.2} us", s.mean);
    }

    // -- Host MPI ---------------------------------------------------------
    let mut mpi = doebench::mpi::MpiConfig::default_host();
    mpi.jitter = Jitter::relative(0.01);
    let cores = on_socket_pair(&topo).expect("pair");
    let mut cfg = OsuConfig::quick();
    cfg.sizes = vec![0, 1024, 65_536, 1 << 20];
    println!("\n== OSU latency (host) ==");
    for pt in osu_latency(&topo, &mpi, cores, &cfg, 11) {
        println!("  {:>8} B : {:>8.2} us", pt.bytes, pt.one_way_us.mean);
    }
}
