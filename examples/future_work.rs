//! The paper's §5 future-work list, executed: inter-node measurements,
//! CPU-vendor comparison, and MPI-implementation comparison.
//!
//! ```text
//! cargo run --release --example future_work
//! ```

use doebench::{studies, Campaign};

fn main() {
    let campaign = Campaign::quick();

    // Future work 1: inter-node latency/bandwidth, contention, collectives.
    println!("{}", studies::internode_latency_table(1).to_ascii());
    println!("\"There goes the neighborhood\" (Bhatele et al. [20]):");
    for (flows, bw) in studies::contention_series(2, 7) {
        let bar = "#".repeat((bw / 1.2) as usize);
        println!("  {flows} flows | {bw:>6.2} GB/s {bar}");
    }
    println!();
    println!("{}", studies::collectives_table().to_ascii());

    // Future work 3: Intel vs AMD vs Arm design points.
    println!("{}", studies::cpu_vendor_table(&campaign).to_ascii());

    // Future work 4: MPI implementations on one machine (cf. [26]).
    let t = studies::mpi_variant_table("Summit", &campaign).expect("Summit exists");
    println!("{}", t.to_ascii());
    println!("(same hardware, 4 software stacks: the [26] effect)");
}
