//! Quickstart: measure the host you are on, then a DOE machine model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use doebench::babelstream::{run_native, NativeStreamConfig};
use doebench::{table6, Campaign};

fn main() {
    // 1. The suite's original purpose: measure *this* machine.
    println!("== BabelStream (native) on this host ==");
    let rep = run_native(&NativeStreamConfig {
        elems: 4 * 1024 * 1024, // 32 MiB per array
        iters: 20,
        nthreads: None, // all host parallelism
    });
    for (op, s) in &rep.per_op {
        println!("  {op:<6} {:>8.2} GB/s (best {:.2})", s.mean, s.max);
    }
    let (op, bw) = rep.best_overall();
    println!(
        "  best: {op} at {bw:.2} GB/s on {} threads (verified: {})",
        rep.nthreads, rep.verified
    );

    // 2. The reproduction: a paper machine on the simulator.
    println!("\n== Comm|Scope (simulated) on Frontier ==");
    let frontier = doebench::machines::by_name("Frontier").expect("model exists");
    let row = table6::run_machine(&frontier, &Campaign::quick());
    println!("  kernel launch : {:>8.2} us", row.launch_us.mean);
    println!("  queue wait    : {:>8.2} us", row.wait_us.mean);
    println!("  H2D/D2H lat   : {:>8.2} us", row.hd_latency_us.mean);
    println!("  H2D/D2H bw    : {:>8.2} GB/s", row.hd_bandwidth_gb_s.mean);
    for (class, s) in &row.d2d_latency_us {
        println!("  D2D class {class} : {:>8.2} us", s.mean);
    }
    println!("\n(paper, Table 6: launch 1.51, wait 0.14, lat 12.91, bw 24.87)");
}
