//! Full native BabelStream with a thread-count sweep: how does *this*
//! host's memory bandwidth scale, single thread to all threads?
//!
//! ```text
//! cargo run --release --example native_stream              # default 8 Mi doubles
//! cargo run --release --example native_stream -- 16777216  # custom element count
//! ```

use doebench::babelstream::{run_native, NativeStreamConfig};

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8 * 1024 * 1024);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "# native BabelStream, {elems} doubles/array ({:.1} MiB), up to {max_threads} threads",
        elems as f64 * 8.0 / (1024.0 * 1024.0)
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}  {:>4}",
        "threads", "Copy", "Mul", "Add", "Triad", "Dot", "best",
    );

    let mut threads = 1usize;
    loop {
        let rep = run_native(&NativeStreamConfig {
            elems,
            iters: 10,
            nthreads: Some(threads),
        });
        assert!(rep.verified, "verification failed at {threads} threads");
        let cells: Vec<String> = rep
            .best_bw
            .iter()
            .map(|(_, bw)| format!("{bw:>10.2}"))
            .collect();
        let (op, best) = rep.best_overall();
        println!("{threads:>8} {}  {op} {best:.2} GB/s", cells.join(" "));
        if threads >= max_threads {
            break;
        }
        threads = (threads * 2).min(max_threads);
    }
}
