//! A dependency-free benchmark-harness shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate reimplements the subset of the `criterion` 0.x API the
//! `doe-bench` benches use: `Criterion`, `benchmark_group`/`bench_function`
//! with `sample_size`/`throughput`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple — per sample it times a fixed batch
//! of iterations with `std::time::Instant` and reports the median — but the
//! interface and the printed `name  time: [..]` lines match what scripts
//! built around `cargo bench` output expect.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier (`BenchmarkId::new("f", n)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Median wall time per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and size the batch so one sample lasts >= ~1 ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = per_iter[per_iter.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set a target measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            last_ns: 0.0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into_id());
        let mut line = format!("{full:<48} time: [{}]", fmt_ns(b.last_ns));
        if let Some(t) = self.throughput {
            let per_sec = match t {
                Throughput::Bytes(n) => format!("{:.3} GiB/s", n as f64 / b.last_ns),
                Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 * 1e3 / b.last_ns),
            };
            line.push_str(&format!(" thrpt: [{per_sec}]"));
        }
        println!("{line}");
        self
    }

    /// Run one benchmark that closes over a borrowed input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            last_ns: 0.0,
        };
        f(&mut b);
        println!("{id:<48} time: [{}]", fmt_ns(b.last_ns));
        self
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Throughput::Bytes(n) => write!(f, "{n} B"),
            Throughput::Elements(n) => write!(f, "{n} elem"),
        }
    }
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
