//! A deterministic, dependency-free property-testing shim.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate reimplements the *subset* of the `proptest` 1.x API the
//! workspace's tests use: the [`Strategy`] trait with `prop_map`, numeric
//! range and tuple strategies, [`collection::vec`], `any::<T>()`, `Just`,
//! `prop_oneof!`, and the `proptest!`/`prop_assert!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the case number and the generating seed so it can be replayed.
//! Generation is fully deterministic per (test name, case index), which
//! suits this repository's bit-reproducibility goals.

use std::ops::Range;

/// Deterministic split-mix style RNG used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one test case, derived from the test path and case index.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A strategy mapped through a function (`Strategy::prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives; must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs alternatives");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything `vec(strategy, _)` accepts as a length specifier.
    pub trait IntoSizeRange {
        /// Pick a length for one generated vector.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// A strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generate `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// A strategy drawing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Pick one of `options` uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].clone()
        }
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Run one property over `config.cases` deterministic cases.
///
/// Used by the `proptest!` macro; exposed for completeness.
pub fn run_cases(test_path: &str, config: ProptestConfig, mut case_fn: impl FnMut(&mut TestRng)) {
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(test_path, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case_fn(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {case}/{} of `{test_path}` failed \
                 (replay: TestRng::for_case(\"{test_path}\", {case}))",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The assertion/strategy prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// The `prop::` alias used by `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Assert inside a property; panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case when an assumption does not hold.
///
/// Upstream discards the case and draws a replacement; this shim simply
/// returns early, so the case counts as passed without running the body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(x in 0u64..100, (a, b) in strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let path = concat!(module_path!(), "::", stringify!($name));
                $crate::run_cases(path, $config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&$strategy, rng);)+
                    $body
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
